//! **Fleet chaos** — runs the `adapt-fleet` shard fabric end to end:
//! real sockets, whole-shard kills and restarts, and a 1→2→4-shard
//! scaling curve.
//!
//! Three phases, all over loopback TCP:
//!
//! 1. **Scaling.** For each shard count (1 and 2 in `--quick`, plus 4 in
//!    full mode) a fresh fleet is started and a fixed number of
//!    closed-loop client threads drive distinct-key `RecommendMask`
//!    requests through the [`FleetRouter`]. Every shard runs the same
//!    seed under a flaky fault profile with *real* (slept) retry
//!    backoff, so request latency is wait-dominated and shards overlap
//!    their sleeps — the regime where adding shards buys throughput
//!    even on a single-core host. Keys are chosen owner-balanced per
//!    ring so the curve measures shard parallelism, not hash luck. Full
//!    mode asserts 4-shard aggregate throughput ≥ 2.5× the 1-shard
//!    baseline.
//! 2. **Chaos.** A two-shard fleet serves a warmed key pool
//!    sequentially; one shard is killed mid-run (`ShardServer::stop`
//!    shuts its sockets down abruptly, like a crash). Invariants:
//!    every orphaned key is served by exactly the shard
//!    `owner_among(key, live)` predicts (deterministic rerouting), the
//!    failover answers are semantically identical to the dead shard's
//!    (fleet determinism: same seed → same mask), and the healthy
//!    shard's p99 over its own keys stays within 2× its steady-state
//!    p99 (+5 ms scheduler epsilon). The shard is then restarted under
//!    its old identity — ownership must return, again bit-identically.
//! 3. **Replay.** The whole chaos phase runs a second time from
//!    scratch; the per-shard response logs (provenance, mask, fidelity
//!    bits — everything except wall-clock timing) must match the first
//!    run line for line.
//!
//! Zero worker panics are tolerated anywhere. Results land in
//! `results/BENCH_fleet.json`; the scaling entries use the same schema
//! block (`shards`/`requests`/`throughput_rps`/`latency_ms`) as the
//! single-instance `fleet_baseline` block `service_loadgen` writes into
//! `BENCH_service.json`, so the two files compose into one curve.

use crate::runner::ExperimentCfg;
use adapt::DdProtocol;
use adapt_fleet::ring::route_key;
use adapt_fleet::{FleetMap, FleetRouter, Ring, RouterConfig, ShardConfig, ShardId, ShardServer};
use adapt_service::{
    logical_hash, DeviceId, Request, Response, SearchBudget, ServiceConfig, TierPolicy,
};
use machine::{FaultProfile, RetryPolicy};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Qubits in the workload circuits (Clifford, so the CHP fast path
/// serves them and CPU stays far below the slept retry backoff).
const QUBITS: u32 = 6;
/// Closed-loop client threads during the scaling phase.
const CLIENTS: usize = 8;

/// GHZ prefixed with a per-qubit {I, X, Z, XZ} stamp drawn from two tag
/// bits: 4^QUBITS structurally distinct circuits, each its own cache
/// key and ring key, all Clifford.
fn tagged(tag: usize) -> qcirc::Circuit {
    let mut c = qcirc::Circuit::new(QUBITS as usize);
    for q in 0..QUBITS {
        match (tag >> (2 * q)) & 3 {
            1 => {
                c.x(q);
            }
            2 => {
                c.z(q);
            }
            3 => {
                c.x(q);
                c.z(q);
            }
            _ => {}
        }
    }
    c.h(0);
    for q in 0..QUBITS - 1 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    c
}

fn budget() -> SearchBudget {
    SearchBudget {
        shots: 32,
        trajectories: 2,
        neighborhood: 4,
        tier: TierPolicy::default(),
    }
}

fn request(tag: usize) -> Request {
    Request::RecommendMask {
        circuit: tagged(tag),
        device: DeviceId::Guadalupe,
        protocol: DdProtocol::Cpmg,
        budget: budget(),
        deadline_ms: None,
        tenancy: Default::default(),
    }
}

fn ring_key(req: &Request) -> u64 {
    match req {
        Request::RecommendMask {
            circuit, device, ..
        }
        | Request::Execute {
            circuit, device, ..
        } => route_key(*device, logical_hash(circuit)),
    }
}

/// Every backend job flips a coin on failing or timing out, and the
/// retry executor *sleeps* its backoff: latency becomes wait-dominated,
/// which is what makes shard count — not core count — the throughput
/// lever this harness measures.
fn service_config(cfg: &ExperimentCfg) -> ServiceConfig {
    ServiceConfig {
        devices: vec![DeviceId::Guadalupe],
        workers: 1,
        queue_capacity: 64,
        cache_capacity: 256,
        seed: cfg.seed,
        fault_profile: FaultProfile {
            transient_failure: 0.35,
            timeout: 0.10,
            ..FaultProfile::none()
        },
        retry: RetryPolicy {
            sleep: true,
            ..RetryPolicy::default()
        },
        default_budget: budget(),
        virtual_deadlines: true,
        ..ServiceConfig::default()
    }
}

fn shard_ids(n: usize) -> Vec<ShardId> {
    (0..n as u32).map(|i| ShardId(i * 7 + 1)).collect()
}

fn start_fleet(cfg: &ExperimentCfg, n: usize) -> (Vec<ShardServer>, Ring, FleetMap) {
    let ring = Ring::new(shard_ids(n));
    let map = FleetMap::new();
    let shards = shard_ids(n)
        .into_iter()
        .map(|shard| {
            ShardServer::start(ShardConfig {
                shard,
                service: service_config(cfg),
                max_frame_bytes: 1 << 20,
                fleet: Some((ring.clone(), map.clone())),
            })
            .expect("shard starts")
        })
        .collect();
    (shards, ring, map)
}

/// `per_shard` tags per ring member, scanning tag space from `salt`:
/// the returned workload is owner-balanced, so makespan is bounded by
/// per-shard work rather than by the hash distribution's worst bucket.
fn balanced_tags(ring: &Ring, per_shard: usize, salt: usize) -> Vec<usize> {
    let mut left: BTreeMap<ShardId, usize> =
        ring.shards().iter().map(|&s| (s, per_shard)).collect();
    let mut tags = Vec::with_capacity(per_shard * ring.len());
    for tag in salt..salt + (1 << (2 * QUBITS as usize)) {
        if tags.len() == per_shard * ring.len() {
            break;
        }
        let owner = ring.owner(ring_key(&request(tag))).expect("nonempty ring");
        let slot = left.get_mut(&owner).expect("owner in ring");
        if *slot > 0 {
            *slot -= 1;
            tags.push(tag);
        }
    }
    assert_eq!(
        tags.len(),
        per_shard * ring.len(),
        "tag space too small to balance {per_shard} keys per shard"
    );
    tags
}

/// Everything except wall-clock timing: the replay-stable identity of a
/// response.
fn full_digest(tag: usize, response: &Response) -> String {
    match response {
        Response::Mask(r) => format!(
            "{tag}|{:?}|{:?}|{:016x}|{}",
            r.provenance,
            r.mask,
            r.decoy_fidelity.to_bits(),
            r.decoy_runs
        ),
        Response::Execution(_) => panic!("workload is RecommendMask-only"),
    }
}

/// The seed-determined part only (no provenance): what must agree
/// between a shard and its failover stand-in.
fn semantic_digest(response: &Response) -> String {
    match response {
        Response::Mask(r) => format!("{:?}|{:016x}", r.mask, r.decoy_fidelity.to_bits()),
        Response::Execution(_) => panic!("workload is RecommendMask-only"),
    }
}

struct ScalingPoint {
    shards: usize,
    requests: usize,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn scaling_point(cfg: &ExperimentCfg, n: usize, per_shard_keys: usize) -> ScalingPoint {
    let (shards, ring, _map) = start_fleet(cfg, n);
    let endpoints: Vec<_> = shards.iter().map(|s| (s.shard(), s.addr())).collect();
    let router = FleetRouter::new(RouterConfig::default(), &endpoints);
    let tags = Arc::new(balanced_tags(&ring, per_shard_keys, 0));
    let requests = tags.len();

    let next = Arc::new(AtomicUsize::new(0));
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(requests)));
    let t0 = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let router = router.clone();
            let tags = Arc::clone(&tags);
            let next = Arc::clone(&next);
            let latencies = Arc::clone(&latencies);
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tags.len() {
                    return;
                }
                let sent = Instant::now();
                router
                    .call(request(tags[i]))
                    .expect("scaling call succeeds");
                latencies
                    .lock()
                    .unwrap()
                    .push(sent.elapsed().as_micros() as u64);
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let mut latencies_us = Arc::try_unwrap(latencies)
        .expect("clients joined")
        .into_inner()
        .unwrap();
    latencies_us.sort_unstable();
    for shard in shards {
        let report = shard.stop();
        assert_eq!(report.stats.worker_panics, 0, "{} panicked", report.shard);
    }
    let point = ScalingPoint {
        shards: n,
        requests,
        throughput_rps: requests as f64 / elapsed.max(1e-9),
        p50_ms: adapt_obs::percentile(&latencies_us, 0.50) / 1000.0,
        p99_ms: adapt_obs::percentile(&latencies_us, 0.99) / 1000.0,
    };
    println!(
        "  {} shard(s): {} requests in {elapsed:.2} s ({:.1} req/s), p50 {:.1} ms, p99 {:.1} ms",
        point.shards, point.requests, point.throughput_rps, point.p50_ms, point.p99_ms
    );
    point
}

/// One full chaos pass (steady → kill → restart); run twice for the
/// replay comparison.
struct ChaosReport {
    /// Response log per serving shard, in serving order — the replay
    /// unit (a digest never names wall-clock time).
    per_shard: BTreeMap<ShardId, Vec<String>>,
    steady_p50_ms: f64,
    steady_p99_ms: f64,
    /// Healthy-shard-owned latencies while the victim was down.
    degraded_p99_ms: f64,
    rerouted: usize,
    worker_panics: u64,
}

fn run_chaos(cfg: &ExperimentCfg, rounds: usize) -> ChaosReport {
    let (mut shards, ring, map) = start_fleet(cfg, 2);
    let endpoints: Vec<_> = shards.iter().map(|s| (s.shard(), s.addr())).collect();
    let router = FleetRouter::new(
        RouterConfig {
            failure_threshold: 1,
            cooldown_requests: 4,
            max_attempts: 2,
        },
        &endpoints,
    );
    let victim = shards[0].shard();
    let healthy = shards[1].shard();
    // A warmed pool, half owned by each shard; requests are sequential
    // so every breaker decision and cache state is a pure function of
    // the schedule — that is what makes the replay comparison exact.
    let tags = balanced_tags(&ring, 6, 0);

    let mut report = ChaosReport {
        per_shard: BTreeMap::new(),
        steady_p50_ms: 0.0,
        steady_p99_ms: 0.0,
        degraded_p99_ms: 0.0,
        rerouted: 0,
        worker_panics: 0,
    };
    let mut steady_us: Vec<u64> = Vec::new();
    let mut steady_healthy_us: Vec<u64> = Vec::new();
    let mut degraded_healthy_us: Vec<u64> = Vec::new();
    let mut semantic: BTreeMap<usize, String> = BTreeMap::new();

    // Steady state: warm every key, then serve it hot.
    for _ in 0..rounds {
        for &tag in &tags {
            let sent = Instant::now();
            let routed = router.call(request(tag)).expect("steady call");
            let us = sent.elapsed().as_micros() as u64;
            steady_us.push(us);
            assert!(!routed.rerouted, "no reroutes before the kill");
            if routed.shard == healthy {
                steady_healthy_us.push(us);
            }
            semantic
                .entry(tag)
                .or_insert_with(|| semantic_digest(&routed.response));
            report
                .per_shard
                .entry(routed.shard)
                .or_default()
                .push(full_digest(tag, &routed.response));
        }
    }

    // Kill the victim mid-run: sockets die abruptly, the fleet map
    // forgets it, in-pool router connections go stale.
    let dead = shards.remove(0).stop();
    report.worker_panics += dead.stats.worker_panics;
    for _ in 0..rounds {
        for &tag in &tags {
            let req = request(tag);
            let owner = ring.owner(ring_key(&req)).unwrap();
            let sent = Instant::now();
            let routed = router.call(req).expect("kill-phase call");
            let us = sent.elapsed().as_micros() as u64;
            if owner == victim {
                // Deterministic failover: exactly the shard a ring
                // without the victim would name — and, same seed, the
                // semantically identical answer the victim gave.
                let stand_in = Ring::owner_among(
                    ring_key(&request(tag)),
                    ring.shards().iter().copied().filter(|&s| s != victim),
                )
                .unwrap();
                assert_eq!(routed.shard, stand_in, "non-deterministic reroute");
                assert!(routed.rerouted);
                assert_eq!(
                    semantic_digest(&routed.response),
                    semantic[&tag],
                    "failover answer diverged for tag {tag}"
                );
                report.rerouted += 1;
            } else {
                assert_eq!(routed.shard, healthy);
                assert!(!routed.rerouted);
                degraded_healthy_us.push(us);
            }
            report
                .per_shard
                .entry(routed.shard)
                .or_default()
                .push(full_digest(tag, &routed.response));
        }
    }

    // Restart under the old identity: a fresh service (same seed, cold
    // cache) on a fresh port. Ownership must return at once.
    let reborn = ShardServer::start(ShardConfig {
        shard: victim,
        service: service_config(cfg),
        max_frame_bytes: 1 << 20,
        fleet: Some((ring.clone(), map.clone())),
    })
    .expect("restart");
    router.set_endpoint(victim, reborn.addr());
    shards.insert(0, reborn);
    for _ in 0..rounds.div_ceil(2) {
        for &tag in &tags {
            let req = request(tag);
            let owner = ring.owner(ring_key(&req)).unwrap();
            let routed = router.call(req).expect("post-restart call");
            assert_eq!(routed.shard, owner, "ownership must return after restart");
            assert!(!routed.rerouted);
            assert_eq!(
                semantic_digest(&routed.response),
                semantic[&tag],
                "restarted shard diverged for tag {tag}"
            );
            report
                .per_shard
                .entry(routed.shard)
                .or_default()
                .push(full_digest(tag, &routed.response));
        }
    }

    for shard in shards {
        let r = shard.stop();
        report.worker_panics += r.stats.worker_panics;
    }

    steady_us.sort_unstable();
    steady_healthy_us.sort_unstable();
    degraded_healthy_us.sort_unstable();
    report.steady_p50_ms = adapt_obs::percentile(&steady_us, 0.50) / 1000.0;
    report.steady_p99_ms = adapt_obs::percentile(&steady_us, 0.99) / 1000.0;
    report.degraded_p99_ms = adapt_obs::percentile(&degraded_healthy_us, 0.99) / 1000.0;

    // The kill must not drag the healthy shard's own keys down: its p99
    // while the victim is dead stays within 2× its steady-state p99
    // (plus a 5 ms epsilon for scheduler noise at sub-ms latencies).
    let steady_healthy_p99 = adapt_obs::percentile(&steady_healthy_us, 0.99);
    let degraded_p99 = adapt_obs::percentile(&degraded_healthy_us, 0.99);
    assert!(
        degraded_p99 <= 2.0 * steady_healthy_p99 + 5_000.0,
        "healthy-shard p99 degraded under the kill: {:.1} ms vs {:.1} ms steady",
        degraded_p99 / 1000.0,
        steady_healthy_p99 / 1000.0
    );
    assert_eq!(report.worker_panics, 0, "a shard worker panicked");
    assert!(report.rerouted > 0, "the kill phase must exercise failover");
    report
}

/// Runs the fleet chaos harness and writes `results/BENCH_fleet.json`.
///
/// # Panics
///
/// Panics (failing the CI job) on any violated invariant: a worker
/// panic, a non-deterministic reroute, a failover or replay divergence,
/// a degraded healthy-shard p99, or — in full mode — a 4-shard scaling
/// factor below 2.5×.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Fleet chaos: sharded wire service under kill/restart ==");

    println!("  scaling curve (owner-balanced keys, slept retries):");
    let shard_counts: &[usize] = if cfg.quick { &[1, 2] } else { &[1, 2, 4] };
    let per_shard_keys = if cfg.quick { 12 } else { 14 };
    let scaling: Vec<ScalingPoint> = shard_counts
        .iter()
        // Equal aggregate request count per point, so throughput is
        // comparable: total = per_shard_keys * max_shards for every n.
        .map(|&n| {
            let keys = per_shard_keys * shard_counts.last().unwrap() / n;
            scaling_point(cfg, n, keys)
        })
        .collect();
    let speedup = scaling.last().unwrap().throughput_rps / scaling[0].throughput_rps.max(1e-9);
    println!(
        "  {}-shard speedup over 1 shard: {speedup:.2}x",
        scaling.last().unwrap().shards
    );
    if !cfg.quick {
        assert!(
            speedup >= 2.5,
            "4-shard throughput must reach 2.5x the 1-shard baseline, got {speedup:.2}x"
        );
    }

    let rounds = if cfg.quick { 2 } else { 3 };
    println!("  chaos pass 1 (steady -> kill -> restart):");
    let first = run_chaos(cfg, rounds);
    println!(
        "    steady p50 {:.1} ms / p99 {:.1} ms; {} rerouted during the kill, \
         healthy-shard p99 {:.1} ms",
        first.steady_p50_ms, first.steady_p99_ms, first.rerouted, first.degraded_p99_ms
    );
    println!("  chaos pass 2 (replay):");
    let second = run_chaos(cfg, rounds);
    assert_eq!(
        first.per_shard, second.per_shard,
        "per-shard response logs must replay bit-identically"
    );
    let replayed: usize = first.per_shard.values().map(Vec::len).sum();
    println!(
        "    {replayed} responses across {} shards replayed bit-identically",
        first.per_shard.len()
    );

    write_json(cfg, &scaling, speedup, &first, replayed);
}

fn write_json(
    cfg: &ExperimentCfg,
    scaling: &[ScalingPoint],
    speedup: f64,
    chaos: &ChaosReport,
    replayed: usize,
) {
    let out_dir = cfg.out_dir();
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let points: Vec<String> = scaling
        .iter()
        .map(|p| {
            format!(
                "{{ \"shards\": {}, \"requests\": {}, \"throughput_rps\": {:.2}, \
                 \"latency_ms\": {{ \"p50\": {:.2}, \"p99\": {:.2} }} }}",
                p.shards, p.requests, p.throughput_rps, p.p50_ms, p.p99_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"quick\": {},\n  \"seed\": {},\n  \
         \"scaling\": [\n    {}\n  ],\n  \
         \"scaling_speedup_vs_1\": {speedup:.2},\n  \
         \"chaos\": {{ \"steady_ms\": {{ \"p50\": {:.2}, \"p99\": {:.2} }}, \
         \"healthy_shard_p99_ms_during_kill\": {:.2}, \
         \"rerouted_requests\": {}, \"reroutes_deterministic\": true, \
         \"failover_semantics_identical\": true, \"worker_panics\": {} }},\n  \
         \"replay\": {{ \"per_shard_digests_match\": true, \"responses\": {replayed} }}\n}}\n",
        cfg.quick,
        cfg.seed,
        points.join(",\n    "),
        chaos.steady_p50_ms,
        chaos.steady_p99_ms,
        chaos.degraded_p99_ms,
        chaos.rerouted,
        chaos.worker_panics,
    );
    let path = out_dir.join("BENCH_fleet.json");
    std::fs::write(&path, json).expect("write BENCH_fleet.json");
    println!("  wrote {}", path.display());
}
