//! **Fig. 4** — Characterizing idling errors and DD:
//! (c) probe fidelity vs θ, free vs DD, 1.2 µs idle on IBMQ-London;
//! (f) the same under crosstalk from concurrent CNOTs, 2.4 µs idle;
//! (g,h) fidelity distribution over every qubit–link combination on
//! IBMQ-Guadalupe, 8 µs idle, without and with DD.

use crate::probes::{probe_fidelity, ProbeDd};
use crate::report::{text_histogram, Csv, Table};
use crate::runner::ExperimentCfg;
use adapt::DdProtocol;
use benchmarks::characterization::{idle_probe, idle_probe_with_cnots, theta_grid};
use device::{Device, SeedSpawner};
use machine::Machine;

/// Runs all four panels.
pub fn run(cfg: &ExperimentCfg) {
    let spawner = SeedSpawner::new(cfg.seed ^ 0xF1604);
    part_c(cfg, &spawner);
    part_f(cfg, &spawner);
    parts_gh(cfg, &spawner);
}

fn part_c(cfg: &ExperimentCfg, spawner: &SeedSpawner) {
    println!("\n== Fig 4c: free vs DD probe fidelity vs theta (London, 1.2us idle) ==");
    let machine = Machine::new(Device::ibmq_london(cfg.seed));
    let mut table = Table::new(&["theta", "free", "XY4-DD"]);
    let mut csv = Csv::create(&cfg.out_dir(), "fig04c", &["theta", "free", "dd"]);
    for (i, theta) in theta_grid(9).into_iter().enumerate() {
        let c = idle_probe(5, 0, theta, 1200.0);
        let exec = cfg.probe_exec(spawner.derive(100 + i as u64));
        let free = probe_fidelity(&machine, &c, 0, ProbeDd::Free, &exec);
        let dd = probe_fidelity(&machine, &c, 0, ProbeDd::Protocol(DdProtocol::Xy4), &exec);
        table.row_owned(vec![
            format!("{theta:.2}"),
            format!("{free:.3}"),
            format!("{dd:.3}"),
        ]);
        csv.rowd(&[&theta, &free, &dd]);
    }
    table.print();
    csv.flush().expect("write fig04c.csv");
}

fn part_f(cfg: &ExperimentCfg, spawner: &SeedSpawner) {
    println!("\n== Fig 4f: probe fidelity under crosstalk from CNOTs (London, 2.4us) ==");
    let dev = Device::ibmq_london(cfg.seed);
    // Use the spectator/link pair with the strongest coupling.
    let (probe, link) = strongest_pair(&dev);
    let (a, b) = dev.topology().link_endpoints(link);
    println!(
        "  probe q{probe}, active link {a}-{b}, chi={:.2} rad/us",
        dev.calibration().crosstalk(probe, link)
    );
    let machine = Machine::new(dev.clone());
    // ~2.4 µs of CNOT activity.
    let reps = (2400.0 / dev.link(link).dur_ns).round() as usize;
    let mut table = Table::new(&["theta", "free", "XY4-DD"]);
    let mut csv = Csv::create(&cfg.out_dir(), "fig04f", &["theta", "free", "dd"]);
    let mut worst_free: f64 = 1.0;
    let mut worst_dd: f64 = 1.0;
    for (i, theta) in theta_grid(5).into_iter().enumerate() {
        let c = idle_probe_with_cnots(5, probe, theta, a, b, reps);
        let exec = cfg.probe_exec(spawner.derive(200 + i as u64));
        let free = probe_fidelity(&machine, &c, probe, ProbeDd::Free, &exec);
        let dd = probe_fidelity(
            &machine,
            &c,
            probe,
            ProbeDd::Protocol(DdProtocol::Xy4),
            &exec,
        );
        worst_free = worst_free.min(free);
        worst_dd = worst_dd.min(dd);
        table.row_owned(vec![
            format!("{theta:.2}"),
            format!("{free:.3}"),
            format!("{dd:.3}"),
        ]);
        csv.rowd(&[&theta, &free, &dd]);
    }
    table.print();
    println!("  worst-case: free {worst_free:.3}, DD {worst_dd:.3}");
    csv.flush().expect("write fig04f.csv");
}

fn parts_gh(cfg: &ExperimentCfg, spawner: &SeedSpawner) {
    println!("\n== Fig 4g,h: fidelity over all qubit-link combos (Guadalupe, 8us idle) ==");
    let dev = Device::ibmq_guadalupe(cfg.seed);
    let machine = Machine::new(dev.clone());
    let combos = dev.topology().qubit_link_combinations();
    println!("  {} combinations", combos.len());
    let thetas = if cfg.quick {
        theta_grid(3)
    } else {
        theta_grid(5)
    };
    let mut csv = Csv::create(
        &cfg.out_dir(),
        "fig04gh",
        &["qubit", "link_a", "link_b", "theta", "free", "dd"],
    );
    let mut free_all = Vec::new();
    let mut dd_all = Vec::new();
    for (ci, &(q, link)) in combos.iter().enumerate() {
        let (a, b) = dev.topology().link_endpoints(link);
        let reps = (8000.0 / dev.link(link).dur_ns).round() as usize;
        for (ti, &theta) in thetas.iter().enumerate() {
            let c = idle_probe_with_cnots(16, q, theta, a, b, reps);
            let exec = cfg.probe_exec(spawner.derive(300 + (ci * 16 + ti) as u64));
            let free = probe_fidelity(&machine, &c, q, ProbeDd::Free, &exec);
            let dd = probe_fidelity(&machine, &c, q, ProbeDd::Protocol(DdProtocol::Xy4), &exec);
            free_all.push(free);
            dd_all.push(dd);
            csv.rowd(&[&q, &a, &b, &theta, &free, &dd]);
        }
    }
    let stats = |v: &[f64]| -> (f64, f64) {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        (mean, min)
    };
    let (fm, fw) = stats(&free_all);
    let (dm, dw) = stats(&dd_all);
    println!(
        "  (g) free evolution: mean {:.1}%  worst {:.1}%",
        fm * 100.0,
        fw * 100.0
    );
    println!("{}", text_histogram(&free_all, 0.0, 1.0, 10));
    println!(
        "  (h) with XY4 DD:    mean {:.1}%  worst {:.1}%",
        dm * 100.0,
        dw * 100.0
    );
    println!("{}", text_histogram(&dd_all, 0.0, 1.0, 10));
    csv.flush().expect("write fig04gh.csv");
}

/// The (spectator, link) pair with the strongest |crosstalk| on a device.
pub fn strongest_pair(dev: &Device) -> (u32, device::LinkId) {
    let mut best = (0u32, device::LinkId(0), 0.0f64);
    for q in 0..dev.num_qubits() as u32 {
        for (l, chi) in dev.calibration().crosstalk_on(q) {
            if chi.abs() > best.2.abs() {
                best = (q, l, chi);
            }
        }
    }
    (best.0, best.1)
}
