//! **Tiered loadgen** — drives the degradation ladder end to end and
//! proves the PR-6 latency contract: a cold cache under 250 ms deadlines
//! answers instantly from the heuristic tier, stale-while-revalidate
//! bridges calibration drift, and proactive prewarm makes an epoch
//! advance a non-event for the hot set.
//!
//! The run is a fixed six-phase schedule, submitted strictly
//! sequentially under virtual deadlines so every tier decision is a pure
//! function of the seed:
//!
//! * **P1 cold burst** — the hot Guadalupe set under 250 ms deadlines on
//!   an empty cache. Every answer must be `heuristic` (tier 0), and the
//!   first request per key schedules exactly one background refine.
//! * **P2 upgrade** — after `drain_refines`, the same requests are
//!   `cache-hit`: the refine lane upgraded every key to a full search
//!   result without any client ever waiting on one.
//! * **P3 fresh searches** — deadline-free requests search inline
//!   (`fresh-search`), exactly the pre-ladder behavior.
//! * **P4 sick device** — Rome goes dead: completed-but-degraded
//!   searches (`degraded-all-dd`) trip its breaker (`breaker-fallback`),
//!   and a tight-deadline half-open probe is cut short into a
//!   `partial-search` mask.
//! * **P5 drift** — an epoch advance turns the hot set stale; 250 ms
//!   requests are served `stale-served:1` while the refine lane
//!   re-characterizes, then hit fresh entries after a drain.
//! * **P6 prewarm** — `prewarm_epoch` re-searches the hot set against
//!   the *next* calibration before it lands, so the post-advance
//!   requests are immediate `cache-hit`s: no cold-miss storm, zero
//!   heuristic fallbacks.
//!
//! Asserted invariants (the binary exits nonzero when any fails): all
//! seven `Provenance` variants are exercised; ≥ 99 % of the 250 ms
//! cohort is answered within its wall-clock deadline; zero worker
//! panics; heuristic and stale answers are tagged and never re-served as
//! fresh (`cache-hit` / `fresh-search` responses always carry decoy
//! evidence, heuristic answers never do); and the whole schedule replays
//! bit-identically from the same seed. Results land in
//! `results/BENCH_tiered.json`.

use crate::runner::ExperimentCfg;
use adapt::DdProtocol;
use adapt_service::{
    BreakerConfig, BreakerFallback, DeviceId, MaskService, Provenance, Recommendation, Request,
    Response, SearchBudget, ServiceConfig, ServiceStats, TierConfig, TierPolicy,
};
use machine::FaultProfile;
use std::collections::BTreeSet;

/// Everything one scheduled run produces. `digest`, `provenances` and
/// `stats` are wall-clock-free and must be bit-identical across two
/// same-seed runs; the latency vectors are reported but never compared.
struct RunReport {
    /// One line per response: `step device provenance mask
    /// fidelity-bits decoy-runs`.
    digest: Vec<String>,
    /// Client-observed latencies (µs) of the P1 cold burst.
    cold_latencies_us: Vec<u64>,
    /// Deadline-carrying requests seen / answered within their wall
    /// deadline.
    deadline_cohort: usize,
    within_deadline: usize,
    /// Display names of every provenance served.
    provenances: BTreeSet<String>,
    /// Responses by tier class, in ladder order.
    heuristic: u64,
    stale: u64,
    cache_hits: u64,
    fresh: u64,
    degraded: u64,
    partial: u64,
    fallback: u64,
    /// Background-upgrade latency (µs) percentiles off the service's
    /// `adapt_service_refine_us` histogram (wall clock; reported only).
    upgrade_p50_us: f64,
    upgrade_p99_us: f64,
    prewarm_scheduled: usize,
    stats: ServiceStats,
}

/// GHZ prefixed with a per-qubit X bitmask: distinct `tag` → distinct
/// structural hash (single X per qubit, so the transpiler cannot cancel
/// pairs back into a collision).
fn tagged(n: u32, tag: usize) -> qcirc::Circuit {
    let mut c = qcirc::Circuit::new(n as usize);
    for q in 0..n {
        if tag & (1 << q) != 0 {
            c.x(q);
        }
    }
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    c
}

/// A device whose every backend job fails: searches degrade to all-DD
/// and the breaker sees failures.
fn dead_profile() -> FaultProfile {
    FaultProfile {
        transient_failure: 1.0,
        ..FaultProfile::none()
    }
}

fn budget(cfg: &ExperimentCfg, tier: TierPolicy) -> SearchBudget {
    SearchBudget {
        shots: if cfg.quick { 64 } else { 128 },
        trajectories: if cfg.quick { 2 } else { 4 },
        neighborhood: 4,
        tier,
    }
}

fn service_config(cfg: &ExperimentCfg) -> ServiceConfig {
    ServiceConfig {
        devices: vec![DeviceId::Guadalupe, DeviceId::Rome],
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 64,
        seed: cfg.seed,
        fault_profile: cfg.fault_profile,
        default_budget: budget(cfg, TierPolicy::default()),
        // Expiry as a pure function of the seeded schedule: two
        // identical runs ladder at identical points.
        virtual_deadlines: true,
        breaker: BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_threshold: 0.5,
            cooldown_requests: 2,
            open_retry_hint_ms: 200,
            fallback: BreakerFallback::ConservativeMask,
            ..BreakerConfig::enabled()
        },
        tiers: TierConfig {
            // No finite client deadline fits a cold search, so every
            // deadline-carrying request rides the ladder; deadline-free
            // requests search inline as before.
            min_search_ms: 600_000,
            max_stale_epochs: 2,
            ..TierConfig::default()
        },
        ..ServiceConfig::default()
    }
}

/// The deadline (ms) the cold-start SLO cohort carries.
const SLO_MS: u64 = 250;

/// Runs the fixed six-phase schedule once and collects the report.
fn run_schedule(cfg: &ExperimentCfg) -> RunReport {
    let svc = MaskService::start(service_config(cfg));
    let hot: Vec<qcirc::Circuit> = [1usize, 2, 4, 8].iter().map(|&t| tagged(6, t)).collect();
    let cold_rounds = if cfg.quick { 6 } else { 10 };
    let mut report = RunReport {
        digest: Vec::new(),
        cold_latencies_us: Vec::new(),
        deadline_cohort: 0,
        within_deadline: 0,
        provenances: BTreeSet::new(),
        heuristic: 0,
        stale: 0,
        cache_hits: 0,
        fresh: 0,
        degraded: 0,
        partial: 0,
        fallback: 0,
        upgrade_p50_us: 0.0,
        upgrade_p99_us: 0.0,
        prewarm_scheduled: 0,
        stats: ServiceStats::default(),
    };

    let mut ask = |svc: &MaskService,
                   step: &str,
                   circuit: &qcirc::Circuit,
                   device: DeviceId,
                   tier: TierPolicy,
                   deadline_ms: Option<u64>|
     -> Recommendation {
        let rec = match svc.call(Request::RecommendMask {
            circuit: circuit.clone(),
            device,
            protocol: DdProtocol::Xy4,
            budget: budget(cfg, tier),
            deadline_ms,
            tenancy: Default::default(),
        }) {
            Ok(Response::Mask(rec)) => rec,
            other => panic!("tiered loadgen {step}: unexpected response {other:?}"),
        };
        // The SLO contract is over the 250 ms cohort; the 8 ms breaker
        // probes are deliberately sacrificial and stay out of it.
        if deadline_ms == Some(SLO_MS) {
            report.deadline_cohort += 1;
            if rec.timing.total_us() <= SLO_MS * 1000 {
                report.within_deadline += 1;
            }
        }
        report.provenances.insert(rec.provenance.to_string());
        match rec.provenance {
            Provenance::Heuristic => report.heuristic += 1,
            Provenance::StaleServed { .. } => report.stale += 1,
            Provenance::CacheHit => report.cache_hits += 1,
            Provenance::FreshSearch => report.fresh += 1,
            Provenance::DegradedAllDd => report.degraded += 1,
            Provenance::PartialSearch => report.partial += 1,
            Provenance::BreakerFallback => report.fallback += 1,
        }
        // Tagged-provenance / cache-hygiene contract: anything served as
        // a (possibly stale) search result carries decoy evidence; a
        // heuristic answer never does, so it can never be mistaken for —
        // or re-served as — a fresh search.
        match rec.provenance {
            Provenance::CacheHit | Provenance::FreshSearch | Provenance::StaleServed { .. } => {
                assert!(
                    rec.decoy_runs > 0,
                    "{step}: a search-tier answer must carry decoy evidence: {rec:?}"
                );
            }
            Provenance::Heuristic => {
                assert_eq!(
                    rec.decoy_runs, 0,
                    "{step}: a heuristic answer must not claim decoy evidence"
                );
            }
            _ => {}
        }
        report.digest.push(format!(
            "{step} {} {} {} {:016x} {}",
            device.name(),
            rec.provenance,
            rec.mask,
            rec.decoy_fidelity.to_bits(),
            rec.decoy_runs
        ));
        rec
    };

    // P1a: cold-start SLO sampling. Heuristic-pinned requests are never
    // cached and never refined, so every round stays a true cold answer
    // — repeats cannot race a background upgrade. They live on Rome so
    // the sampling traffic cannot hijack Guadalupe's hot-key ranking.
    for _ in 0..cold_rounds {
        for tag in [17usize, 18, 20, 24] {
            let rec = ask(
                &svc,
                "p1-cold",
                &tagged(5, tag),
                DeviceId::Rome,
                TierPolicy::HeuristicOnly,
                Some(SLO_MS),
            );
            assert_eq!(
                rec.provenance,
                Provenance::Heuristic,
                "a cold cache under a tight deadline must answer from tier 0"
            );
            report.cold_latencies_us.push(rec.timing.total_us());
        }
    }
    // P1b: the hot set goes cold-miss once each. The miss owns the
    // single-flight ticket and schedules the background upgrade.
    for c in &hot {
        let rec = ask(
            &svc,
            "p1-hot-cold",
            c,
            DeviceId::Guadalupe,
            TierPolicy::Auto,
            Some(SLO_MS),
        );
        assert_eq!(
            rec.provenance,
            Provenance::Heuristic,
            "a cold hot-set request under a tight deadline must answer from tier 0"
        );
        report.cold_latencies_us.push(rec.timing.total_us());
    }
    assert_eq!(
        svc.stats().refines_enqueued,
        hot.len() as u64,
        "each cold miss must schedule exactly one refine"
    );

    // P2: upgrade. The refine lane finishes; the same requests now hit
    // full search results without any client having waited.
    svc.drain_refines();
    for c in &hot {
        let rec = ask(
            &svc,
            "p2-upgraded",
            c,
            DeviceId::Guadalupe,
            TierPolicy::Auto,
            Some(SLO_MS),
        );
        assert_eq!(rec.provenance, Provenance::CacheHit);
    }

    // P3: deadline-free requests search inline, pre-ladder behavior.
    for tag in [3usize, 5] {
        let rec = ask(
            &svc,
            "p3-fresh",
            &tagged(6, tag),
            DeviceId::Guadalupe,
            TierPolicy::Auto,
            None,
        );
        assert_eq!(rec.provenance, Provenance::FreshSearch);
    }

    // P4: Rome dies. Deadline-free searches complete degraded and feed
    // the breaker; once open, requests get the conservative fallback and
    // a tight-deadline half-open probe is cut into a partial mask.
    svc.set_fault_profile(DeviceId::Rome, dead_profile());
    for idx in 0..16usize {
        let deadline = (idx >= 4 && idx % 4 == 1).then_some(8);
        // SearchOnly pins the probe to the search path: the ladder would
        // otherwise answer an 8 ms deadline from tier 0.
        let tier = if deadline.is_some() {
            TierPolicy::SearchOnly
        } else {
            TierPolicy::Auto
        };
        ask(
            &svc,
            "p4-sick",
            &tagged(5, idx % 32),
            DeviceId::Rome,
            tier,
            deadline,
        );
    }

    // P5: drift lands on the hot set. Stale copies bridge the gap while
    // the refine lane re-characterizes at the new epoch.
    svc.advance_epoch(DeviceId::Guadalupe)
        .expect("guadalupe is registered");
    for c in &hot {
        let rec = ask(
            &svc,
            "p5-stale",
            c,
            DeviceId::Guadalupe,
            TierPolicy::Auto,
            Some(SLO_MS),
        );
        assert!(
            matches!(rec.provenance, Provenance::StaleServed { age_epochs: 1 }),
            "drift within the staleness bound must serve stale, got {:?}",
            rec.provenance
        );
    }
    svc.drain_refines();
    for c in &hot {
        let rec = ask(
            &svc,
            "p5-refreshed",
            c,
            DeviceId::Guadalupe,
            TierPolicy::Auto,
            Some(SLO_MS),
        );
        assert_eq!(rec.provenance, Provenance::CacheHit);
    }

    // P6: prewarm the hot set against the *next* epoch, then advance.
    // The drift is a non-event: immediate hits, no heuristic fallback.
    let scheduled = svc
        .prewarm_epoch(DeviceId::Guadalupe)
        .expect("guadalupe is registered");
    assert_eq!(scheduled, hot.len(), "the whole hot set must prewarm");
    report.prewarm_scheduled = scheduled;
    svc.drain_refines();
    let heuristic_before = svc.stats().heuristic_served;
    svc.advance_epoch(DeviceId::Guadalupe)
        .expect("guadalupe is registered");
    for c in &hot {
        let rec = ask(
            &svc,
            "p6-prewarmed",
            c,
            DeviceId::Guadalupe,
            TierPolicy::Auto,
            Some(SLO_MS),
        );
        assert_eq!(
            rec.provenance,
            Provenance::CacheHit,
            "a prewarmed epoch advance must not cause a cold-miss storm"
        );
    }
    assert_eq!(
        svc.stats().heuristic_served,
        heuristic_before,
        "zero heuristic fallbacks after a prewarmed advance"
    );

    let refine_hist = svc.metrics_registry().histogram("adapt_service_refine_us");
    report.upgrade_p50_us = refine_hist.percentile_us(0.50);
    report.upgrade_p99_us = refine_hist.percentile_us(0.99);
    report.cold_latencies_us.sort_unstable();
    report.stats = svc.shutdown();
    report
}

/// Runs the tiered loadgen and writes `results/BENCH_tiered.json`.
///
/// # Panics
///
/// Panics (failing the CI job) when any invariant in the module docs
/// does not hold.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Tiered loadgen: the degradation ladder under 250 ms deadlines ==");
    println!(
        "  run 1: six-phase schedule (cold burst, upgrade, fresh, sick device, drift, prewarm)"
    );
    let report = run_schedule(cfg);

    // Every rung of the ladder — all seven provenance variants — fired.
    let expected: BTreeSet<String> = [
        Provenance::CacheHit,
        Provenance::FreshSearch,
        Provenance::DegradedAllDd,
        Provenance::PartialSearch,
        Provenance::BreakerFallback,
        Provenance::Heuristic,
        Provenance::StaleServed { age_epochs: 1 },
    ]
    .iter()
    .map(|p| p.to_string())
    .collect();
    assert_eq!(
        report.provenances, expected,
        "the schedule must exercise every provenance variant"
    );
    assert_eq!(report.stats.worker_panics, 0, "zero panics across the run");

    // The cold-start SLO: the deadline cohort is answered in time.
    let within_rate = report.within_deadline as f64 / report.deadline_cohort.max(1) as f64;
    assert!(
        within_rate >= 0.99,
        "within-deadline rate {:.4} below the 99% SLO ({} of {})",
        within_rate,
        report.within_deadline,
        report.deadline_cohort
    );

    println!("  run 2: determinism replay (identical seed and schedule)");
    let replay = run_schedule(cfg);
    assert_eq!(
        report.digest, replay.digest,
        "responses must be bit-identical across identical runs"
    );
    assert_eq!(
        (
            report.stats.searches,
            report.stats.heuristic_served,
            report.stats.stale_served,
            report.stats.refines_enqueued,
            report.stats.refines_completed,
            report.stats.refines_dropped,
            report.stats.prewarm_scheduled,
            report.stats.partial_searches,
            report.stats.breaker_fallbacks,
        ),
        (
            replay.stats.searches,
            replay.stats.heuristic_served,
            replay.stats.stale_served,
            replay.stats.refines_enqueued,
            replay.stats.refines_completed,
            replay.stats.refines_dropped,
            replay.stats.prewarm_scheduled,
            replay.stats.partial_searches,
            replay.stats.breaker_fallbacks,
        ),
        "counters must be reproducible across identical runs"
    );

    let cold_p50 = adapt_obs::percentile(&report.cold_latencies_us, 0.50) / 1000.0;
    let cold_p99 = adapt_obs::percentile(&report.cold_latencies_us, 0.99) / 1000.0;
    println!(
        "  cold start: p50 {cold_p50:.2} ms, p99 {cold_p99:.2} ms against a {SLO_MS} ms deadline \
         ({} of {} in time, {:.1}%)",
        report.within_deadline,
        report.deadline_cohort,
        within_rate * 100.0
    );
    println!(
        "  tier mix: {} heuristic / {} stale / {} hits / {} fresh / {} degraded / \
         {} partial / {} fallback",
        report.heuristic,
        report.stale,
        report.cache_hits,
        report.fresh,
        report.degraded,
        report.partial,
        report.fallback
    );
    println!(
        "  background upgrades: {} refines ({} prewarm), p50 {:.1} ms, p99 {:.1} ms",
        report.stats.refines_completed,
        report.prewarm_scheduled,
        report.upgrade_p50_us / 1000.0,
        report.upgrade_p99_us / 1000.0
    );

    write_json(cfg, &report, within_rate, cold_p50, cold_p99);
}

fn write_json(cfg: &ExperimentCfg, report: &RunReport, within_rate: f64, p50: f64, p99: f64) {
    let out_dir = cfg.out_dir();
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let provenances: Vec<String> = report
        .provenances
        .iter()
        .map(|p| format!("\"{p}\""))
        .collect();
    let stats = &report.stats;
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"quick\": {},\n  \"seed\": {},\n  \"faults\": \"{}\",\n  \
         \"slo_deadline_ms\": {SLO_MS},\n  \
         \"cold_start_ms\": {{ \"p50\": {p50:.3}, \"p99\": {p99:.3} }},\n  \
         \"within_deadline\": {{ \"cohort\": {}, \"within\": {}, \"rate\": {within_rate:.4} }},\n  \
         \"tier_mix\": {{ \"heuristic\": {}, \"stale_served\": {}, \"cache_hits\": {}, \
         \"fresh_searches\": {}, \"degraded_all_dd\": {}, \"partial_searches\": {}, \
         \"breaker_fallbacks\": {} }},\n  \
         \"upgrade_latency_ms\": {{ \"p50\": {:.3}, \"p99\": {:.3} }},\n  \
         \"refines\": {{ \"enqueued\": {}, \"completed\": {}, \"dropped\": {}, \
         \"prewarm_scheduled\": {} }},\n  \
         \"provenance_coverage\": [{}],\n  \
         \"worker_panics\": {},\n  \"deterministic_replay\": true\n}}\n",
        cfg.quick,
        cfg.seed,
        cfg.fault_name,
        report.deadline_cohort,
        report.within_deadline,
        report.heuristic,
        report.stale,
        report.cache_hits,
        report.fresh,
        report.degraded,
        report.partial,
        report.fallback,
        report.upgrade_p50_us / 1000.0,
        report.upgrade_p99_us / 1000.0,
        stats.refines_enqueued,
        stats.refines_completed,
        stats.refines_dropped,
        stats.prewarm_scheduled,
        provenances.join(", "),
        stats.worker_panics,
    );
    let path = out_dir.join("BENCH_tiered.json");
    std::fs::write(&path, json).expect("write BENCH_tiered.json");
    println!("  wrote {}", path.display());
}
