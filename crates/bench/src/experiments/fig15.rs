//! **Fig. 15** — Relative fidelity of the policies on 16-qubit
//! IBMQ-Guadalupe (the newest machine: faster gates, lower error), for
//! both protocols, on the larger workloads.

use crate::runner::ExperimentCfg;
use adapt::DdProtocol;
use device::Device;

/// Runs the experiment.
pub fn run(cfg: &ExperimentCfg) {
    let dev = Device::ibmq_guadalupe(cfg.seed);
    let names: Vec<&str> = if cfg.quick {
        vec!["BV-8", "QFT-7A", "QAOA-10A"]
    } else {
        vec!["BV-8", "QFT-7A", "QFT-7B", "QAOA-10A", "QAOA-10B"]
    };
    for protocol in [DdProtocol::Xy4, DdProtocol::IbmqDd] {
        println!("\n== Fig 15: policies on IBMQ-Guadalupe, {protocol} ==");
        // Runtime-Best is omitted on Guadalupe: QFT-7-class sweeps are the
        // costliest executions in the suite and the figure's claim is
        // ADAPT-vs-All-DD robustness (§6.3). EXPERIMENTS.md notes this.
        super::policy_figure(
            cfg,
            &dev,
            &names,
            protocol,
            false,
            &format!("fig15_{protocol}"),
        );
    }
}
