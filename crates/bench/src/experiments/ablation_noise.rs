//! **Ablation: noise model** — validates the DESIGN.md claim that DD's
//! benefit requires *coherent, correlated* idling noise: with only
//! stochastic Pauli channels, DD cannot help; and the OU correlation time
//! controls the XY4-vs-IBMQ-DD gap.

use crate::report::{Csv, Table};
use crate::runner::ExperimentCfg;
use adapt::{Adapt, Policy};
use benchmarks::suite::by_name;
use device::{Device, SeedSpawner};
use machine::{Machine, NoiseToggles};

/// Runs the ablation.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Ablation: which noise channels make DD worthwhile (QFT-6A, Toronto) ==");
    let spawner = SeedSpawner::new(cfg.seed ^ 0xAB1A);
    let dev = Device::ibmq_toronto(cfg.seed);
    let bench = by_name("QFT-6A").expect("QFT-6A exists");
    let acfg = cfg.adapt_cfg(adapt::DdProtocol::Xy4, spawner.derive(1));

    let cases: Vec<(&str, NoiseToggles)> = vec![
        ("full model", NoiseToggles::default()),
        (
            "no crosstalk",
            NoiseToggles {
                idle_crosstalk: false,
                ..NoiseToggles::default()
            },
        ),
        (
            "no coherent idle noise",
            NoiseToggles {
                idle_coherent: false,
                idle_crosstalk: false,
                ..NoiseToggles::default()
            },
        ),
        (
            "stochastic (Pauli) noise only",
            NoiseToggles {
                idle_coherent: false,
                idle_crosstalk: false,
                ..NoiseToggles::default()
            },
        ),
    ];
    let mut table = Table::new(&["noise model", "No-DD", "All-DD", "All-DD rel"]);
    let mut csv = Csv::create(
        &cfg.out_dir(),
        "ablation_noise",
        &["case", "no_dd", "all_dd", "rel"],
    );
    for (label, toggles) in cases {
        let adapt = Adapt::new(Machine::with_toggles(dev.clone(), toggles));
        let no_dd = adapt
            .run_policy(&bench.circuit, Policy::NoDd, &acfg)
            .expect("NoDD");
        let all_dd = adapt
            .run_policy(&bench.circuit, Policy::AllDd, &acfg)
            .expect("AllDD");
        let rel = all_dd.fidelity / no_dd.fidelity.max(1e-4);
        table.row_owned(vec![
            label.to_string(),
            format!("{:.3}", no_dd.fidelity),
            format!("{:.3}", all_dd.fidelity),
            format!("{rel:.2}x"),
        ]);
        csv.rowd(&[&label, &no_dd.fidelity, &all_dd.fidelity, &rel]);
    }
    table.print();

    println!("\n-- OU correlation time vs protocol gap (probe, 8us idle) --");
    let mut table = Table::new(&["tau_c (us)", "free", "XY4", "IBMQ-DD", "XY4 - IBMQ-DD"]);
    let mut csv2 = Csv::create(
        &cfg.out_dir(),
        "ablation_noise_tau",
        &["tau_us", "free", "xy4", "ibmq_dd"],
    );
    use crate::probes::{probe_fidelity, ProbeDd};
    let base = Device::ibmq_guadalupe(cfg.seed);
    let (probe, link) = super::fig04::strongest_pair(&base);
    let (a, b) = base.topology().link_endpoints(link);
    for (ti, tau_us) in [0.5f64, 1.0, 2.0, 4.0].into_iter().enumerate() {
        let dev = base.with_adjusted_qubits(|q| q.ou_tau_ns = tau_us * 1000.0);
        let machine = Machine::new(dev.clone());
        let reps = (8000.0 / dev.link(link).dur_ns).round() as usize;
        let c = benchmarks::characterization::idle_probe_with_cnots(
            16,
            probe,
            std::f64::consts::FRAC_PI_2,
            a,
            b,
            reps,
        );
        let exec = cfg.probe_exec(spawner.derive(40 + ti as u64));
        let free = probe_fidelity(&machine, &c, probe, ProbeDd::Free, &exec);
        let xy4 = probe_fidelity(
            &machine,
            &c,
            probe,
            ProbeDd::Protocol(adapt::DdProtocol::Xy4),
            &exec,
        );
        let ibmq = probe_fidelity(
            &machine,
            &c,
            probe,
            ProbeDd::Protocol(adapt::DdProtocol::IbmqDd),
            &exec,
        );
        table.row_owned(vec![
            format!("{tau_us:.1}"),
            format!("{free:.3}"),
            format!("{xy4:.3}"),
            format!("{ibmq:.3}"),
            format!("{:+.3}", xy4 - ibmq),
        ]);
        csv2.rowd(&[&tau_us, &free, &xy4, &ibmq]);
    }
    table.print();
    csv.flush().expect("write ablation_noise.csv");
    csv2.flush().expect("write ablation_noise_tau.csv");
}
