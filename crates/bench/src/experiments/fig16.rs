//! **Fig. 16** — Mean probe fidelity vs idle time for each DD protocol
//! (free vs XY4 vs IBMQ-DD) over qubit–link combinations on
//! IBMQ-Guadalupe. The paper's finding: XY4 overtakes the sparse IBMQ-DD
//! sequence as idle windows grow, because long gaps between the two X
//! pulses let (finite-correlation-time) noise re-accumulate.

use crate::probes::{probe_fidelity, ProbeDd};
use crate::report::{Csv, Table};
use crate::runner::ExperimentCfg;
use adapt::DdProtocol;
use benchmarks::characterization::idle_probe_with_cnots;
use device::{Device, SeedSpawner};
use machine::Machine;

/// Runs the experiment.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Fig 16: DD protocol comparison vs idle time (Guadalupe) ==");
    let spawner = SeedSpawner::new(cfg.seed ^ 0xF1616);
    let dev = Device::ibmq_guadalupe(cfg.seed);
    let machine = Machine::new(dev.clone());
    let combos = dev.topology().qubit_link_combinations();
    // Subsample combinations to keep the sweep tractable.
    let stride = if cfg.quick { 16 } else { 6 };
    let sample: Vec<_> = combos.iter().step_by(stride).copied().collect();
    println!(
        "  {} of {} combinations, theta = pi/2",
        sample.len(),
        combos.len()
    );

    let mut table = Table::new(&["idle(us)", "free", "XY4", "IBMQ-DD"]);
    let mut csv = Csv::create(
        &cfg.out_dir(),
        "fig16",
        &["idle_us", "free", "xy4", "ibmq_dd"],
    );
    for (ii, idle_us) in [1.0f64, 2.0, 4.0, 8.0, 12.0].into_iter().enumerate() {
        let mut sums = [0.0f64; 3];
        for (ci, &(q, link)) in sample.iter().enumerate() {
            let (a, b) = dev.topology().link_endpoints(link);
            let reps = (idle_us * 1000.0 / dev.link(link).dur_ns).round().max(1.0) as usize;
            let c = idle_probe_with_cnots(16, q, std::f64::consts::FRAC_PI_2, a, b, reps);
            let exec = cfg.probe_exec(spawner.derive((ii * 1000 + ci) as u64));
            sums[0] += probe_fidelity(&machine, &c, q, ProbeDd::Free, &exec);
            sums[1] += probe_fidelity(&machine, &c, q, ProbeDd::Protocol(DdProtocol::Xy4), &exec);
            sums[2] += crate::probes::probe_fidelity_with(
                &machine,
                &c,
                q,
                adapt::DdConfig {
                    protocol: DdProtocol::IbmqDd,
                    // The standalone protocol of Fig. 16: two pulses over
                    // the whole window, no conservative segmenting.
                    segment_ns: f64::INFINITY,
                    ..adapt::DdConfig::default()
                },
                &exec,
            );
        }
        let n = sample.len() as f64;
        let (free, xy4, ibmq) = (sums[0] / n, sums[1] / n, sums[2] / n);
        table.row_owned(vec![
            format!("{idle_us:.0}"),
            format!("{free:.3}"),
            format!("{xy4:.3}"),
            format!("{ibmq:.3}"),
        ]);
        csv.rowd(&[&idle_us, &free, &xy4, &ibmq]);
    }
    table.print();
    csv.flush().expect("write fig16.csv");
}
