//! **Fig. 5** — Distribution of the *relative* fidelity (DD / free) of an
//! idle probe over all 700 qubit–link combinations on IBMQ-Toronto. The
//! paper's headline: DD helps up to ~4x and hurts down to ~0.2x, so
//! applying it indiscriminately is unsafe.

use crate::probes::{probe_fidelity, ProbeDd};
use crate::report::{text_histogram, Csv};
use crate::runner::ExperimentCfg;
use adapt::DdProtocol;
use benchmarks::characterization::{idle_probe_with_cnots, theta_grid};
use device::{Device, SeedSpawner};
use machine::Machine;

/// Runs the experiment.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Fig 5: relative fidelity with DD over 700 qubit-link combos (Toronto) ==");
    let spawner = SeedSpawner::new(cfg.seed ^ 0xF165);
    let dev = Device::ibmq_toronto(cfg.seed);
    let machine = Machine::new(dev.clone());
    let combos = dev.topology().qubit_link_combinations();
    let thetas = if cfg.quick {
        vec![std::f64::consts::FRAC_PI_2]
    } else {
        theta_grid(3)
    };
    let mut csv = Csv::create(
        &cfg.out_dir(),
        "fig05",
        &["qubit", "link_a", "link_b", "relative_fidelity"],
    );
    let mut rels = Vec::with_capacity(combos.len());
    for (ci, &(q, link)) in combos.iter().enumerate() {
        let (a, b) = dev.topology().link_endpoints(link);
        let reps = (8000.0 / dev.link(link).dur_ns).round() as usize;
        let mut free_sum = 0.0;
        let mut dd_sum = 0.0;
        for (ti, &theta) in thetas.iter().enumerate() {
            let c = idle_probe_with_cnots(27, q, theta, a, b, reps);
            let exec = cfg.probe_exec(spawner.derive((ci * 8 + ti) as u64));
            free_sum += probe_fidelity(&machine, &c, q, ProbeDd::Free, &exec);
            dd_sum += probe_fidelity(&machine, &c, q, ProbeDd::Protocol(DdProtocol::Xy4), &exec);
        }
        let rel = dd_sum / free_sum.max(1e-6);
        rels.push(rel);
        csv.rowd(&[&q, &a, &b, &rel]);
    }
    let best = rels.iter().cloned().fold(f64::MIN, f64::max);
    let worst = rels.iter().cloned().fold(f64::MAX, f64::min);
    let below = rels.iter().filter(|&&r| r < 1.0).count();
    println!(
        "  {} combos: DD best {best:.2}x, worst {worst:.2}x, hurts on {below} ({:.0}%)",
        rels.len(),
        below as f64 * 100.0 / rels.len() as f64
    );
    println!("{}", text_histogram(&rels, 0.0, 2.0, 16));
    csv.flush().expect("write fig05.csv");
}
