//! **Fig. 14** — Relative fidelity of the policies on 27-qubit IBMQ-Paris
//! with the XY4 sequence (the paper could not run IBMQ-DD on Paris before
//! the machine retired).

use crate::runner::ExperimentCfg;
use adapt::DdProtocol;
use device::Device;

/// Runs the experiment.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Fig 14: policies on IBMQ-Paris, XY4 ==");
    let dev = Device::ibmq_paris(cfg.seed);
    let names: Vec<&str> = if cfg.quick {
        vec!["BV-7", "QFT-6A", "QAOA-8A"]
    } else {
        vec!["BV-7", "QFT-6A", "QAOA-8A", "QAOA-10A"]
    };
    super::policy_figure(cfg, &dev, &names, DdProtocol::Xy4, true, "fig14");
}
