//! **Table 2** — Decoy quality: Spearman correlation between real and
//! decoy fidelities (CDC vs SDC) across DD masks, plus SDC ideal-output
//! simulation time and a large-circuit scalability check.

use crate::report::{Csv, Table};
use crate::runner::ExperimentCfg;
use adapt::decoy::{decoy_ideal_distribution, make_decoy, DecoyKind};
use adapt::search::SearchContext;
use adapt::{metrics, Adapt, DdMask};
use benchmarks::suite::by_name;
use device::{Device, SeedSpawner};
use machine::Machine;
use std::time::Instant;

/// Runs the experiment.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Table 2: CDC vs SDC correlation with the real circuit ==");
    let spawner = SeedSpawner::new(cfg.seed ^ 0x7AB2);
    let cases: [(&str, Device); 4] = [
        ("Adder", Device::ibmq_rome(cfg.seed)),
        ("QFT-6A", Device::ibmq_paris(cfg.seed)),
        ("QAOA-8A", Device::ibmq_paris(cfg.seed)),
        ("QAOA-10A", Device::ibmq_paris(cfg.seed)),
    ];

    let mut table = Table::new(&[
        "Benchmark",
        "Platform",
        "CDC-corr",
        "SDC-corr",
        "SDC-SimTime",
    ]);
    let mut csv = Csv::create(
        &cfg.out_dir(),
        "table2",
        &[
            "benchmark",
            "platform",
            "cdc_corr",
            "sdc_corr",
            "sdc_sim_ms",
        ],
    );

    for (bi, (name, dev)) in cases.into_iter().enumerate() {
        let bench = by_name(name).expect("known benchmark");
        let machine = Machine::new(dev.clone());
        let adapt = Adapt::new(machine.clone());
        let acfg = cfg.adapt_cfg(adapt::DdProtocol::Xy4, spawner.derive(bi as u64));
        let compiled = adapt.compile(&bench.circuit, &acfg);
        let ideal = adapt.ideal_output(&bench.circuit).expect("ideal");
        let n = bench.num_qubits;

        // Mask sample: exhaustive for small programs, seeded subset above.
        let masks: Vec<DdMask> = if (1usize << n) <= 32 {
            DdMask::enumerate_all(n)
        } else {
            use rand::Rng;
            let mut rng = SeedSpawner::new(spawner.derive(50 + bi as u64)).rng();
            let mut m = vec![DdMask::none(n), DdMask::all(n)];
            let budget = if cfg.quick { 12 } else { 32 };
            while m.len() < budget {
                let candidate = DdMask::from_bits(rng.gen(), n);
                if !m.contains(&candidate) {
                    m.push(candidate);
                }
            }
            m
        };

        // Real-circuit fidelities per mask (search budget).
        let sweep_cfg = adapt::AdaptConfig {
            final_exec: acfg.search_exec,
            ..acfg
        };
        let real: Vec<f64> = masks
            .iter()
            .map(|&m| {
                adapt
                    .run_with_mask(&compiled, &ideal, m, &sweep_cfg)
                    .expect("real run")
                    .1
            })
            .collect();

        let corr_for = |kind: DecoyKind| -> f64 {
            let decoy = make_decoy(&compiled.timed, kind).expect("decoy");
            let ctx = SearchContext::new(
                &machine,
                machine.device().clone(),
                &decoy,
                &compiled.initial_layout,
                acfg.dd,
                // Decoy runs are separate machine executions: decorrelate
                // their noise realizations from the real-circuit sweeps.
                machine::ExecutionConfig {
                    seed: acfg.search_exec.seed ^ 0x5EED_DEC0,
                    ..acfg.search_exec
                },
                n,
            );
            // One batched submission per decoy kind: the backend sees all
            // masks at once and may score them in parallel.
            let scores: Vec<f64> = ctx
                .score_batch(&masks)
                .into_iter()
                .map(|r| r.expect("decoy run").fidelity)
                .collect();
            metrics::spearman(&real, &scores)
        };

        let cdc = corr_for(DecoyKind::Clifford);
        let sdc = corr_for(DecoyKind::Seeded { max_seed_qubits: 4 });

        // SDC ideal-output simulation time.
        let sdc_decoy =
            make_decoy(&compiled.timed, DecoyKind::Seeded { max_seed_qubits: 4 }).expect("decoy");
        let t0 = Instant::now();
        let _ = decoy_ideal_distribution(&sdc_decoy.timed).expect("ideal decoy sim");
        let sim_ms = t0.elapsed().as_secs_f64() * 1000.0;

        table.row_owned(vec![
            name.to_string(),
            dev.name().to_string(),
            format!("{cdc:.2}"),
            format!("{sdc:.2}"),
            format!("{sim_ms:.1} ms"),
        ]);
        csv.rowd(&[&name, &dev.name(), &cdc, &sdc, &sim_ms]);
    }
    table.print();

    // Scalability check (paper: 100-qubit QAOA SDC in 330 s for 100k
    // shots on Qiskit's extended stabilizer simulator): sample 100k shots
    // of a 100-qubit QAOA Clifford decoy through the CHP tableau. The
    // exact-distribution path is skipped — a 100-qubit Clifford output
    // spans an affine subspace too large to enumerate — so this exercises
    // the sampling path the framework would use at that scale.
    let t0 = Instant::now();
    let n_big = 100usize;
    let big = benchmarks::qaoa_maxcut(n_big, &benchmarks::ring_edges(n_big), 0.4, 0.7, 1);
    // The classical-register type packs outcomes into 64 bits; re-measure
    // the first 64 qubits only (the tableau evolution still spans all 100).
    let mut big64 = qcirc::Circuit::with_clbits(n_big, 64);
    for instr in big.iter() {
        if !matches!(instr.kind, qcirc::OpKind::Measure(_)) {
            big64.push(instr.clone());
        }
    }
    for q in 0..64u32 {
        big64.measure(q, q);
    }
    let big = big64;
    let decomposed = transpiler::decompose_circuit(&big);
    let clifford = adapt::decoy::to_stabilizer_circuit(&cliffordize(&decomposed))
        .expect("rounded circuit is Clifford");
    let shots = if cfg.quick { 5_000 } else { 100_000 };
    let mut rng = SeedSpawner::new(spawner.derive(99)).rng();
    let counts = stab::sample_counts(&clifford, shots, &mut rng).expect("CHP sampling");
    println!(
        "  scalability: {n_big}-qubit QAOA CDC, {} shots via CHP in {:.1} s ({} distinct outcomes)",
        counts.total(),
        t0.elapsed().as_secs_f64(),
        counts.distinct()
    );
    csv.flush().expect("write table2.csv");
}

/// Rounds every RZ in a basis circuit to the nearest Clifford angle.
fn cliffordize(c: &qcirc::Circuit) -> qcirc::Circuit {
    use qcirc::{Gate, Instruction, OpKind};
    let mut out = qcirc::Circuit::with_clbits(c.num_qubits(), c.num_clbits());
    for instr in c.iter() {
        match &instr.kind {
            OpKind::Gate(Gate::RZ(t)) => {
                out.push(Instruction::gate(
                    Gate::RZ(adapt::decoy::round_to_clifford_angle(*t)),
                    instr.qubits.clone(),
                ));
            }
            _ => {
                out.push(instr.clone());
            }
        }
    }
    out
}
