//! **Table 5** — Summary of results: min / geometric-mean / max relative
//! fidelity of All-DD and ADAPT per machine, aggregated from the Fig.
//! 13–15 CSVs (run those first; `all_experiments` does so in order).

use crate::report::{Csv, Table};
use crate::runner::ExperimentCfg;
use adapt::metrics::geomean;
use std::fs;

/// Runs the aggregation.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Table 5: summary (min/gmean/max relative fidelity) ==");
    let sources = [
        ("Paris", "fig14", "XY4"),
        ("Toronto", "fig13_XY4", "XY4"),
        ("Toronto", "fig13_IBMQ-DD", "IBMQ-DD"),
        ("Guadalupe", "fig15_XY4", "XY4"),
        ("Guadalupe", "fig15_IBMQ-DD", "IBMQ-DD"),
    ];
    let mut table = Table::new(&[
        "Machine",
        "Protocol",
        "All-DD min/gmean/max",
        "ADAPT min/gmean/max",
    ]);
    let mut csv = Csv::create(
        &cfg.out_dir(),
        "table5",
        &[
            "machine",
            "protocol",
            "all_dd_min",
            "all_dd_gmean",
            "all_dd_max",
            "adapt_min",
            "adapt_gmean",
            "adapt_max",
        ],
    );
    for (machine, stem, protocol) in sources {
        let path = cfg.out_dir().join(format!("{stem}.csv"));
        let Ok(content) = fs::read_to_string(&path) else {
            println!(
                "  (skipping {machine}/{protocol}: {} not found — run the figure first)",
                path.display()
            );
            continue;
        };
        let mut all_dd = Vec::new();
        let mut adapt_rel = Vec::new();
        for line in content.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() >= 5 {
                if let (Ok(a), Ok(b)) = (cells[3].parse::<f64>(), cells[4].parse::<f64>()) {
                    all_dd.push(a);
                    adapt_rel.push(b);
                }
            }
        }
        if all_dd.is_empty() {
            continue;
        }
        let span = |v: &[f64]| -> (f64, f64, f64) {
            (
                v.iter().cloned().fold(f64::MAX, f64::min),
                geomean(v),
                v.iter().cloned().fold(f64::MIN, f64::max),
            )
        };
        let (a_min, a_gm, a_max) = span(&all_dd);
        let (d_min, d_gm, d_max) = span(&adapt_rel);
        table.row_owned(vec![
            machine.to_string(),
            protocol.to_string(),
            format!("{a_min:.2} / {a_gm:.2} / {a_max:.2}"),
            format!("{d_min:.2} / {d_gm:.2} / {d_max:.2}"),
        ]);
        csv.rowd(&[
            &machine, &protocol, &a_min, &a_gm, &a_max, &d_min, &d_gm, &d_max,
        ]);
    }
    table.print();
    csv.flush().expect("write table5.csv");
}
