//! **Fig. 3b** — Impact of SWAPs on the idle time of Q0 as BV circuits
//! grow, IBMQ-Toronto vs a machine with all-to-all connectivity.

use crate::report::{Csv, Table};
use crate::runner::ExperimentCfg;
use benchmarks::bernstein_vazirani;
use device::Device;
use transpiler::{transpile, TranspileOptions};

/// Runs the experiment.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Fig 3b: SWAP-induced idle time of Q0, BV-n ==");
    let toronto = Device::ibmq_toronto(cfg.seed);
    let mut table = Table::new(&[
        "BV size",
        "Toronto idle(us)",
        "All-to-all idle(us)",
        "ratio",
    ]);
    let mut csv = Csv::create(
        &cfg.out_dir(),
        "fig03",
        &["bv_size", "toronto_idle_us", "all_to_all_idle_us", "ratio"],
    );

    for n in 4..=10usize {
        let secret = (1u64 << (n - 1)) - 1; // all-ones: maximal CNOT chain
        let bv = bernstein_vazirani(n, secret);
        let full = Device::all_to_all(n, cfg.seed);
        let idle_on = |dev: &Device| -> f64 {
            let t = transpile(&bv, dev, &TranspileOptions::default());
            let wire = t.initial_layout.phys_of(0);
            let total: f64 = t
                .timed
                .idle_windows(wire)
                .iter()
                .map(|w| w.duration_ns())
                .sum();
            total / 1000.0
        };
        let tor = idle_on(&toronto);
        let ata = idle_on(&full);
        table.row_owned(vec![
            format!("BV-{n}"),
            format!("{tor:.2}"),
            format!("{ata:.2}"),
            format!("{:.1}x", tor / ata.max(1e-9)),
        ]);
        csv.rowd(&[&n, &tor, &ata, &(tor / ata.max(1e-9))]);
    }
    table.print();
    csv.flush().expect("write fig03.csv");
}
