//! **Fig. 8** — Application fidelity of QFT-6 and BV-6 on IBMQ-Toronto
//! under *every* DD mask (all 64 combinations). Shows the paper's central
//! observation: neither "no DD" (000000) nor "DD on all" (111111) is
//! optimal, and the best mask is workload-specific.

use crate::report::{Csv, Table};
use crate::runner::ExperimentCfg;
use adapt::{Adapt, DdMask};
use benchmarks::{bernstein_vazirani, qft_bench};
use device::{Device, SeedSpawner};
use machine::Machine;

/// Runs the experiment.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Fig 8: all 64 DD masks for QFT-6 and BV-6 (Toronto) ==");
    let spawner = SeedSpawner::new(cfg.seed ^ 0xF168);
    let dev = Device::ibmq_toronto(cfg.seed);
    let adapt = Adapt::new(Machine::new(dev));
    let acfg = cfg.adapt_cfg(adapt::DdProtocol::Xy4, spawner.derive(3));

    let workloads = [
        ("QFT-6", qft_bench(6, 5)),
        ("BV-6", bernstein_vazirani(6, 0b10110)),
    ];
    let mut csv = Csv::create(&cfg.out_dir(), "fig08", &["mask", "workload", "fidelity"]);
    let mut summary = Table::new(&[
        "workload",
        "baseline",
        "all-DD",
        "best mask",
        "best",
        "all-DD rel",
        "best rel",
    ]);
    // Sweep at search budget (64 runs per workload), mirroring the paper's
    // per-mask executions.
    let sweep_cfg = adapt::AdaptConfig {
        final_exec: acfg.search_exec,
        ..acfg
    };
    for (name, circuit) in workloads {
        let compiled = adapt.compile(&circuit, &acfg);
        let ideal = adapt.ideal_output(&circuit).expect("ideal");
        let mut fids = Vec::with_capacity(64);
        for mask in DdMask::enumerate_all(6) {
            let (_, f, _) = adapt
                .run_with_mask(&compiled, &ideal, mask, &sweep_cfg)
                .expect("mask run");
            fids.push((mask, f));
            csv.rowd(&[&mask.bits(), &name, &f]);
        }
        let baseline = fids[0].1;
        let all_dd = fids[63].1;
        let (best_mask, best) = fids
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .copied()
            .expect("64 masks");
        summary.row_owned(vec![
            name.to_string(),
            format!("{baseline:.3}"),
            format!("{all_dd:.3}"),
            best_mask.to_string(),
            format!("{best:.3}"),
            format!("{:.2}x", all_dd / baseline.max(1e-4)),
            format!("{:.2}x", best / baseline.max(1e-4)),
        ]);
    }
    summary.print();
    csv.flush().expect("write fig08.csv");
}
