//! **Trace replay** — drives the multi-tenant scheduler end to end with
//! a seeded synthetic trace and proves the PR-9 tenancy contract:
//! per-tenant token-bucket admission, strict class priority with
//! weighted-fair round-robin across tenants, and a schedule that
//! replays bit-identically from the same seed.
//!
//! Three phases, each against a fresh service:
//!
//! * **Replay** — a diurnal (sinusoidal-rate) arrival process over a
//!   heavy-tailed (zipf) tenant population submits a seeded corpus
//!   (GHZ / QFT / QAOA / BV / adder, 5-qubit class so every device
//!   preset can serve it) across all five devices. Interactive and
//!   standard tenants carry deadlines and ride the heuristic tier;
//!   batch tenants are deadline-free and search inline. Quotas run on
//!   *virtual* time (`advance_quota_ms` per step), so every admission
//!   decision — including each `QuotaExhausted` retry hint — is a pure
//!   function of the seed. The whole event digest is replayed on a
//!   second run and must be bit-identical.
//! * **Skew** — a 10:1 two-tenant load (majority batch flood vs a
//!   minority interactive tenant) on one device. The minority tenant's
//!   p99 must stay within 2× its *solo* p99: strict class priority
//!   bounds the damage a flood can do to head-of-line blocking only.
//! * **Fairness** — two equal-weight same-class tenants submit equal
//!   backlogs back to back. Round-robin interleaves them, so their
//!   makespans (≈ throughputs) must agree within 1.5×; a FIFO queue
//!   would finish the first tenant in half the time of the second.
//!
//! Asserted invariants (the binary exits nonzero when any fails): the
//! top class meets a ≥ 99 % SLO; quota rejections fire and only for the
//! quota-bearing tenant; per-tenant metrics render with `tenant`
//! labels; zero worker panics; skew ratio ≤ 2; fairness ratio ≤ 1.5;
//! and the replay digest plus all scheduling counters are bit-identical
//! across two same-seed runs. Results land in
//! `results/BENCH_tenancy.json`.

use crate::runner::ExperimentCfg;
use adapt::DdProtocol;
use adapt_obs::percentile;
use adapt_service::{
    DeviceId, MaskService, Pending, PriorityClass, Request, Response, SearchBudget, ServiceConfig,
    ServiceError, ServiceStats, Tenancy, TenancyConfig, TenantId, TenantQuota, TenantSpec,
    TierConfig, TierPolicy,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Tenants in the replay population (zipf-popular, tenant 0 hottest).
fn tenant_count(cfg: &ExperimentCfg) -> u32 {
    if cfg.quick {
        6
    } else {
        10
    }
}

/// Trace steps; each step is one 100 ms tick of virtual quota time.
fn step_count(cfg: &ExperimentCfg) -> usize {
    if cfg.quick {
        240
    } else {
        480
    }
}

/// Class assignment: the two hottest tenants are interactive, the next
/// two standard, the tail batch.
fn class_of(tenant: u32) -> PriorityClass {
    match tenant {
        0 | 1 => PriorityClass::Interactive,
        2 | 3 => PriorityClass::Standard,
        _ => PriorityClass::Batch,
    }
}

/// Deadline contract per class: interactive 250 ms, standard 1 s,
/// batch unbounded.
fn deadline_of(class: PriorityClass) -> Option<u64> {
    match class {
        PriorityClass::Interactive => Some(250),
        PriorityClass::Standard => Some(1000),
        PriorityClass::Batch => None,
    }
}

fn budget(cfg: &ExperimentCfg, tier: TierPolicy) -> SearchBudget {
    SearchBudget {
        shots: if cfg.quick { 64 } else { 128 },
        trajectories: if cfg.quick { 2 } else { 4 },
        neighborhood: 4,
        tier,
    }
}

/// The replay corpus: the paper's 5-qubit-class programs, servable by
/// every preset including the 5-qubit Rome/London.
fn corpus() -> Vec<(&'static str, qcirc::Circuit)> {
    let mut ghz = qcirc::Circuit::new(5);
    ghz.h(0);
    for q in 0..4 {
        ghz.cx(q, q + 1);
    }
    ghz.measure_all();
    vec![
        ("GHZ-5", ghz),
        ("QFT-5", benchmarks::qft_bench(5, 11)),
        (
            "QAOA-5",
            benchmarks::qaoa_maxcut(5, &benchmarks::ring_edges(5), 0.4, 0.7, 1),
        ),
        ("BV-5", benchmarks::bernstein_vazirani(5, 0b1011)),
        ("Adder", benchmarks::adder4(true, true, false)),
    ]
}

/// GHZ prefixed with a per-qubit X bitmask: distinct `tag` → distinct
/// cache key, so skew/fairness jobs never collide in the single-flight
/// cache and every job costs one full search.
fn tagged(n: u32, tag: usize) -> qcirc::Circuit {
    let mut c = qcirc::Circuit::new(n as usize);
    for q in 0..n {
        if tag & (1 << q) != 0 {
            c.x(q);
        }
    }
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    c
}

/// Tenant 0 carries a tight token bucket (0.5 tokens per 100 ms step,
/// burst 2) so quota rejections fire deterministically; tenant 1 is a
/// weight-4 heavy hitter; everyone else runs the default spec. Refills
/// run on virtual time, driven by [`MaskService::advance_quota_ms`].
fn tenancy_config() -> TenancyConfig {
    let mut tenancy = TenancyConfig {
        virtual_time: true,
        ..TenancyConfig::default()
    };
    tenancy.tenants.insert(
        TenantId(0),
        TenantSpec {
            weight: 1,
            quota: Some(TenantQuota {
                rate_per_s: 5.0,
                burst: 2.0,
            }),
        },
    );
    tenancy.tenants.insert(
        TenantId(1),
        TenantSpec {
            weight: 4,
            quota: None,
        },
    );
    tenancy
}

fn replay_config(cfg: &ExperimentCfg) -> ServiceConfig {
    ServiceConfig {
        devices: DeviceId::ALL.to_vec(),
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 256,
        seed: cfg.seed,
        fault_profile: cfg.fault_profile,
        default_budget: budget(cfg, TierPolicy::default()),
        // Expiry as a pure function of the seeded schedule.
        virtual_deadlines: true,
        // No finite deadline fits a cold search: deadline-carrying
        // requests ride the ladder, deadline-free ones search inline.
        tiers: TierConfig {
            min_search_ms: 600_000,
            max_stale_epochs: 2,
            ..TierConfig::default()
        },
        tenancy: tenancy_config(),
        ..ServiceConfig::default()
    }
}

/// Per-tenant tallies for the replay phase.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct TenantTally {
    submitted: u64,
    completed: u64,
    rejected_quota: u64,
    slo_cohort: u64,
    slo_within: u64,
}

/// Everything one replay run produces. `digest`, `per_tenant` and the
/// counter tuple are wall-clock-free and must be bit-identical across
/// two same-seed runs; latency vectors are reported, never compared.
struct RunReport {
    /// One line per trace event (response or typed rejection).
    digest: Vec<String>,
    per_tenant: BTreeMap<u32, TenantTally>,
    /// Client-observed latencies (µs) by priority class, in
    /// [`PriorityClass::ALL`] order.
    class_latencies_us: [Vec<u64>; 3],
    /// Rendered per-tenant exposition (content is wall-clock-bearing;
    /// only names/labels are asserted on).
    tenant_metrics: String,
    stats: ServiceStats,
}

/// Zipf(1.2) tenant pick: rank 0 is the hottest.
fn pick_tenant(rng: &mut StdRng, tenants: u32) -> u32 {
    let weights: Vec<f64> = (0..tenants)
        .map(|r| 1.0 / f64::from(r + 1).powf(1.2))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut roll = rng.gen::<f64>() * total;
    for (rank, w) in weights.iter().enumerate() {
        roll -= w;
        if roll <= 0.0 {
            return rank as u32;
        }
    }
    tenants - 1
}

/// Guadalupe-heavy device population, like a popular production backend.
fn pick_device(roll: f64) -> DeviceId {
    match roll {
        r if r < 0.36 => DeviceId::Guadalupe,
        r if r < 0.52 => DeviceId::Paris,
        r if r < 0.68 => DeviceId::Toronto,
        r if r < 0.84 => DeviceId::Rome,
        _ => DeviceId::London,
    }
}

/// Runs the seeded trace once and collects the report.
fn run_replay(cfg: &ExperimentCfg) -> RunReport {
    let svc = MaskService::start(replay_config(cfg));
    let corpus = corpus();
    let tenants = tenant_count(cfg);
    let steps = step_count(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7E4A_CE00);
    let mut report = RunReport {
        digest: Vec::new(),
        per_tenant: BTreeMap::new(),
        class_latencies_us: [Vec::new(), Vec::new(), Vec::new()],
        tenant_metrics: String::new(),
        stats: ServiceStats::default(),
    };

    for step in 0..steps {
        // One 100 ms tick of virtual quota time per step.
        svc.advance_quota_ms(100.0);
        // Diurnal load shape: two sinusoidal "days" across the trace.
        let phase = std::f64::consts::TAU * step as f64 / (steps as f64 / 2.0);
        let lambda = 1.0 + 0.9 * phase.sin();
        let arrivals = lambda.floor() as usize + usize::from(rng.gen::<f64>() < lambda.fract());
        for _ in 0..arrivals {
            let tenant = pick_tenant(&mut rng, tenants);
            let class = class_of(tenant);
            let deadline_ms = deadline_of(class);
            // Deadline-carrying requests pin to the (deterministic,
            // never-cached, never-refined) heuristic tier; batch
            // requests search inline and populate the cache.
            let tier = if deadline_ms.is_some() {
                TierPolicy::HeuristicOnly
            } else {
                TierPolicy::Auto
            };
            let device = pick_device(rng.gen::<f64>());
            let (name, circuit) = &corpus[rng.gen_range(0..corpus.len())];
            let tally = report.per_tenant.entry(tenant).or_default();
            tally.submitted += 1;
            let result = svc.call(Request::RecommendMask {
                circuit: circuit.clone(),
                device,
                protocol: DdProtocol::Xy4,
                budget: budget(cfg, tier),
                deadline_ms,
                tenancy: Tenancy::with_class(tenant, class),
            });
            match result {
                Ok(Response::Mask(rec)) => {
                    tally.completed += 1;
                    if let Some(budget_ms) = deadline_ms {
                        tally.slo_cohort += 1;
                        if rec.timing.total_us() <= budget_ms * 1000 {
                            tally.slo_within += 1;
                        }
                    }
                    report.class_latencies_us[class.index()].push(rec.timing.total_us());
                    report.digest.push(format!(
                        "{step} t{tenant} {} {name} {} {} {} {:016x} {}",
                        class.name(),
                        device.name(),
                        rec.provenance,
                        rec.mask,
                        rec.decoy_fidelity.to_bits(),
                        rec.decoy_runs
                    ));
                }
                Err(ServiceError::QuotaExhausted {
                    tenant: rejected,
                    retry_after_ms,
                }) => {
                    assert_eq!(
                        rejected,
                        TenantId(tenant),
                        "a quota rejection must name the submitting tenant"
                    );
                    tally.rejected_quota += 1;
                    report.digest.push(format!(
                        "{step} t{tenant} {} {name} quota-exhausted retry={retry_after_ms}",
                        class.name()
                    ));
                }
                other => panic!("trace replay step {step}: unexpected response {other:?}"),
            }
        }
    }

    report.tenant_metrics = svc.render_tenant_metrics();
    report.stats = svc.shutdown();
    report
}

/// The skew phase: a 10:1 batch flood must not starve the minority
/// interactive tenant. Returns (solo_p99_us, contended_p99_us).
fn run_skew(cfg: &ExperimentCfg) -> (f64, f64) {
    let config = ServiceConfig {
        devices: vec![DeviceId::Guadalupe],
        workers: 4,
        queue_capacity: 256,
        cache_capacity: 256,
        seed: cfg.seed,
        fault_profile: cfg.fault_profile,
        default_budget: budget(cfg, TierPolicy::default()),
        ..ServiceConfig::default()
    };
    let minority_jobs = 12usize;
    let majority_jobs = 120usize; // 10:1

    let minority_request = |tag: usize| Request::RecommendMask {
        circuit: tagged(5, 0x200 + tag),
        device: DeviceId::Guadalupe,
        protocol: DdProtocol::Xy4,
        budget: budget(cfg, TierPolicy::Auto),
        deadline_ms: None,
        tenancy: Tenancy::with_class(9, PriorityClass::Interactive),
    };
    let wait_latencies = |pendings: Vec<Pending>| -> Vec<u64> {
        let mut us: Vec<u64> = pendings
            .into_iter()
            .map(|p| match p.wait() {
                Ok(Response::Mask(rec)) => rec.timing.total_us(),
                other => panic!("skew phase: unexpected response {other:?}"),
            })
            .collect();
        us.sort_unstable();
        us
    };

    // Solo baseline: the minority tenant has the service to itself.
    let svc = MaskService::start(config.clone());
    let pendings: Vec<Pending> = (0..minority_jobs)
        .map(|tag| svc.submit(minority_request(tag)).expect("solo admit"))
        .collect();
    let solo_us = wait_latencies(pendings);
    svc.shutdown();

    // Contended: the majority tenant floods first, then the minority
    // submits the identical backlog into the contention.
    let svc = MaskService::start(config);
    let flood: Vec<Pending> = (0..majority_jobs)
        .map(|tag| {
            svc.submit(Request::RecommendMask {
                circuit: tagged(5, 0x1000 + tag),
                device: DeviceId::Guadalupe,
                protocol: DdProtocol::Xy4,
                budget: budget(cfg, TierPolicy::Auto),
                deadline_ms: None,
                tenancy: Tenancy::with_class(1, PriorityClass::Batch),
            })
            .expect("flood admit")
        })
        .collect();
    let pendings: Vec<Pending> = (0..minority_jobs)
        .map(|tag| svc.submit(minority_request(tag)).expect("contended admit"))
        .collect();
    let contended_us = wait_latencies(pendings);
    for p in flood {
        p.wait().expect("flood job completes");
    }
    svc.shutdown();

    (percentile(&solo_us, 0.99), percentile(&contended_us, 0.99))
}

/// The fairness phase: two equal-weight same-class tenants submit equal
/// backlogs back to back; round-robin must interleave them. Returns the
/// per-tenant makespans (µs) in submission order.
fn run_fairness(cfg: &ExperimentCfg) -> (u64, u64) {
    let svc = MaskService::start(ServiceConfig {
        devices: vec![DeviceId::Guadalupe],
        workers: 2,
        queue_capacity: 128,
        cache_capacity: 256,
        seed: cfg.seed,
        fault_profile: cfg.fault_profile,
        default_budget: budget(cfg, TierPolicy::default()),
        ..ServiceConfig::default()
    });
    let jobs = 15usize;
    let submit_backlog = |tenant: u32, base: usize| -> Vec<Pending> {
        (0..jobs)
            .map(|tag| {
                svc.submit(Request::RecommendMask {
                    circuit: tagged(5, base + tag),
                    device: DeviceId::Guadalupe,
                    protocol: DdProtocol::Xy4,
                    budget: budget(cfg, TierPolicy::Auto),
                    deadline_ms: None,
                    tenancy: Tenancy::with_class(tenant, PriorityClass::Batch),
                })
                .expect("fairness admit")
            })
            .collect()
    };
    // Tenant 5's whole backlog is queued before tenant 6's first job:
    // FIFO would drain 5 completely first; round-robin alternates.
    let first = submit_backlog(5, 0x2000);
    let second = submit_backlog(6, 0x4000);
    // All submits land before any meaningful drain (searches are slow
    // relative to submission), so completion offset ≈ timing.total_us.
    let makespan = |pendings: Vec<Pending>| -> u64 {
        pendings
            .into_iter()
            .map(|p| match p.wait() {
                Ok(Response::Mask(rec)) => rec.timing.total_us(),
                other => panic!("fairness phase: unexpected response {other:?}"),
            })
            .max()
            .unwrap_or(0)
    };
    let first_us = makespan(first);
    let second_us = makespan(second);
    svc.shutdown();
    (first_us, second_us)
}

/// Runs the trace-replay harness and writes `results/BENCH_tenancy.json`.
///
/// # Panics
///
/// Panics (failing the CI job) when any invariant in the module docs
/// does not hold.
pub fn run(cfg: &ExperimentCfg) {
    println!("\n== Trace replay: multi-tenant scheduling under a seeded diurnal trace ==");
    let tenants = tenant_count(cfg);
    println!(
        "  run 1: {} steps, {} tenants (zipf popularity), 5 devices, 5-circuit corpus",
        step_count(cfg),
        tenants
    );
    let report = run_replay(cfg);

    assert_eq!(report.stats.worker_panics, 0, "zero panics across the run");

    // The top class meets its SLO.
    let interactive: TenantTally = report
        .per_tenant
        .iter()
        .filter(|(t, _)| class_of(**t) == PriorityClass::Interactive)
        .fold(TenantTally::default(), |mut acc, (_, t)| {
            acc.slo_cohort += t.slo_cohort;
            acc.slo_within += t.slo_within;
            acc
        });
    let top_attainment = interactive.slo_within as f64 / interactive.slo_cohort.max(1) as f64;
    assert!(
        top_attainment >= 0.99,
        "interactive SLO attainment {:.4} below 99% ({} of {})",
        top_attainment,
        interactive.slo_within,
        interactive.slo_cohort
    );

    // Quota admission fired, and only for the quota-bearing tenant.
    assert!(
        report.stats.rejected_quota > 0,
        "the tight tenant-0 bucket must reject under the diurnal peak"
    );
    for (tenant, tally) in &report.per_tenant {
        if *tenant == 0 {
            assert!(tally.rejected_quota > 0, "tenant 0 must see rejections");
        } else {
            assert_eq!(
                tally.rejected_quota, 0,
                "tenant {tenant} has no quota and must never be rejected for one"
            );
        }
    }
    let digest_rejections: u64 = report.per_tenant.values().map(|t| t.rejected_quota).sum();
    assert_eq!(
        digest_rejections, report.stats.rejected_quota,
        "per-tenant tallies must reconcile with the service counter"
    );

    // Per-tenant metrics render under the tenant label.
    for needle in [
        "adapt_service_tenant_accepted_total",
        "adapt_service_tenant_rejected_quota_total",
        "tenant=\"t0\"",
    ] {
        assert!(
            report.tenant_metrics.contains(needle),
            "tenant exposition must contain {needle}"
        );
    }

    println!("  run 2: determinism replay (identical seed and trace)");
    let replay = run_replay(cfg);
    assert_eq!(
        report.digest, replay.digest,
        "trace events must be bit-identical across identical runs"
    );
    assert_eq!(
        report.per_tenant, replay.per_tenant,
        "per-tenant tallies must be reproducible"
    );
    assert_eq!(
        (
            report.stats.accepted,
            report.stats.rejected,
            report.stats.rejected_quota,
            report.stats.completed,
            report.stats.searches,
            report.stats.heuristic_served,
        ),
        (
            replay.stats.accepted,
            replay.stats.rejected,
            replay.stats.rejected_quota,
            replay.stats.completed,
            replay.stats.searches,
            replay.stats.heuristic_served,
        ),
        "scheduling counters must be reproducible across identical runs"
    );

    println!("  skew: 120 batch jobs vs 12 interactive jobs (10:1), 4 workers");
    let (solo_p99_us, contended_p99_us) = run_skew(cfg);
    // Floor the denominator at 500 µs so a near-instant solo baseline
    // cannot turn scheduler-independent noise into a ratio failure.
    let skew_ratio = contended_p99_us / solo_p99_us.max(500.0);
    println!(
        "    minority p99: solo {:.2} ms, contended {:.2} ms, ratio {skew_ratio:.2}",
        solo_p99_us / 1000.0,
        contended_p99_us / 1000.0
    );
    assert!(
        skew_ratio <= 2.0,
        "minority-tenant p99 degraded {skew_ratio:.2}x under the flood (bound 2.0)"
    );

    println!("  fairness: two equal backlogs submitted back to back, 2 workers");
    let (first_us, second_us) = run_fairness(cfg);
    let fairness_ratio = first_us.max(second_us) as f64 / first_us.min(second_us).max(1) as f64;
    println!(
        "    makespans {:.2} ms / {:.2} ms, max/min throughput ratio {fairness_ratio:.2}",
        first_us as f64 / 1000.0,
        second_us as f64 / 1000.0
    );
    assert!(
        fairness_ratio <= 1.5,
        "equal-weight tenants diverged {fairness_ratio:.2}x (bound 1.5)"
    );

    let mut sorted = report.class_latencies_us.clone();
    for lane in &mut sorted {
        lane.sort_unstable();
    }
    for (class, lane) in PriorityClass::ALL.iter().zip(&sorted) {
        println!(
            "  {}: {} served, p50 {:.2} ms, p99 {:.2} ms",
            class.name(),
            lane.len(),
            percentile(lane, 0.50) / 1000.0,
            percentile(lane, 0.99) / 1000.0
        );
    }

    write_json(
        cfg,
        &report,
        &sorted,
        top_attainment,
        (solo_p99_us, contended_p99_us, skew_ratio),
        (first_us, second_us, fairness_ratio),
    );
}

fn write_json(
    cfg: &ExperimentCfg,
    report: &RunReport,
    sorted_class_us: &[Vec<u64>; 3],
    top_attainment: f64,
    (solo_p99_us, contended_p99_us, skew_ratio): (f64, f64, f64),
    (first_us, second_us, fairness_ratio): (u64, u64, f64),
) {
    let out_dir = cfg.out_dir();
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let per_tenant: Vec<String> = report
        .per_tenant
        .iter()
        .map(|(tenant, t)| {
            // Deadline-free (batch) tenants have no SLO cohort: null.
            let attainment = if t.slo_cohort == 0 {
                "null".to_string()
            } else {
                format!("{:.4}", t.slo_within as f64 / t.slo_cohort as f64)
            };
            format!(
                "    {{ \"tenant\": \"t{tenant}\", \"class\": \"{}\", \"submitted\": {}, \
                 \"completed\": {}, \"rejected_quota\": {}, \"slo_attainment\": {attainment} }}",
                class_of(*tenant).name(),
                t.submitted,
                t.completed,
                t.rejected_quota
            )
        })
        .collect();
    let per_class: Vec<String> = PriorityClass::ALL
        .iter()
        .zip(sorted_class_us)
        .map(|(class, lane)| {
            format!(
                "    \"{}\": {{ \"count\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3} }}",
                class.name(),
                lane.len(),
                percentile(lane, 0.50) / 1000.0,
                percentile(lane, 0.99) / 1000.0
            )
        })
        .collect();
    let stats = &report.stats;
    let json = format!(
        "{{\n  \"schema\": 1,\n  \"quick\": {},\n  \"seed\": {},\n  \"faults\": \"{}\",\n  \
         \"steps\": {},\n  \"tenants\": {},\n  \
         \"requests\": {{ \"accepted\": {}, \"rejected_quota\": {}, \"completed\": {}, \
         \"searches\": {}, \"heuristic_served\": {} }},\n  \
         \"slo\": {{ \"top_class\": \"interactive\", \"attainment\": {top_attainment:.4} }},\n  \
         \"per_tenant\": [\n{}\n  ],\n  \
         \"per_class\": {{\n{}\n  }},\n  \
         \"skew\": {{ \"majority_to_minority\": 10, \"solo_p99_ms\": {:.3}, \
         \"contended_p99_ms\": {:.3}, \"ratio\": {skew_ratio:.3}, \"bound\": 2.0 }},\n  \
         \"fairness\": {{ \"makespan_a_ms\": {:.3}, \"makespan_b_ms\": {:.3}, \
         \"throughput_ratio\": {fairness_ratio:.3}, \"bound\": 1.5 }},\n  \
         \"worker_panics\": {},\n  \"deterministic_replay\": true\n}}\n",
        cfg.quick,
        cfg.seed,
        cfg.fault_name,
        step_count(cfg),
        tenant_count(cfg),
        stats.accepted,
        stats.rejected_quota,
        stats.completed,
        stats.searches,
        stats.heuristic_served,
        per_tenant.join(",\n"),
        per_class.join(",\n"),
        solo_p99_us / 1000.0,
        contended_p99_us / 1000.0,
        first_us as f64 / 1000.0,
        second_us as f64 / 1000.0,
        stats.worker_panics,
    );
    let path = out_dir.join("BENCH_tenancy.json");
    std::fs::write(&path, json).expect("write BENCH_tenancy.json");
    println!("  wrote {}", path.display());
}
