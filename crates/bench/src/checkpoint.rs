//! Experiment checkpointing: streamed partial CSVs plus a manifest.
//!
//! Long experiment suites die for mundane reasons — a laptop sleeps, a
//! CI job hits its wall-clock limit, a flaky backend exhausts a retry
//! budget. A [`Checkpoint`] makes each datapoint durable the moment it is
//! computed: rows stream to `results/<stem>.partial.csv` (flushed per
//! row) and a line-based manifest at `results/<stem>.manifest` records
//! the experiment seed, a configuration hash, and the key of every
//! completed datapoint. Re-running with `--resume` skips completed keys;
//! a seed or configuration mismatch invalidates the checkpoint and
//! restarts from scratch (stale datapoints must never contaminate a
//! differently-configured run).
//!
//! Manifest format (one `key=value` per line, no dependencies needed):
//!
//! ```text
//! seed=2021
//! config=9a3f01c2e77b4d10
//! done=BV-7
//! done=QFT-6A
//! ```
//!
//! The `done=` line for a row is written *after* the row itself is
//! flushed, so a process killed mid-write loses at most the in-flight
//! datapoint: on resume, trailing rows without a matching `done=` entry
//! are discarded and recomputed.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// FNV-1a hash of the configuration facets that must match for a
/// checkpoint to be resumable (budgets, protocol, benchmark list, fault
/// profile...). Order-sensitive by design.
pub fn config_hash(parts: &[&str]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in parts {
        for b in p.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        // Separate parts so ["ab","c"] != ["a","bc"].
        h = (h ^ 0x1f).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Why an existing checkpoint was ignored on a `--resume` request.
///
/// A mismatch is not an error — the experiment simply restarts from
/// scratch — but it must be *loud*: silently recomputing hours of work
/// looks identical to a successful resume until the wall-clock bill
/// arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeSkip {
    /// The manifest was written under a different experiment seed.
    SeedChanged {
        /// `seed=` value found in the manifest.
        old: String,
        /// Seed of the current run.
        new: u64,
    },
    /// The manifest was written under a different configuration hash.
    ConfigChanged {
        /// `config=` value found in the manifest.
        old: String,
        /// Configuration hash of the current run (hex, as in the manifest).
        new: u64,
    },
}

impl std::fmt::Display for ResumeSkip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeSkip::SeedChanged { old, new } => {
                write!(
                    f,
                    "seed changed, ignoring checkpoint (old={old}, new={new})"
                )
            }
            ResumeSkip::ConfigChanged { old, new } => write!(
                f,
                "config changed, ignoring checkpoint (old={old}, new={new:016x})"
            ),
        }
    }
}

/// A resumable, per-datapoint-durable CSV being written for one
/// experiment.
#[derive(Debug)]
pub struct Checkpoint {
    out_dir: PathBuf,
    stem: String,
    header: Vec<String>,
    partial: File,
    manifest: File,
    /// Completed datapoints in completion order: `(key, csv cells)`.
    rows: Vec<(String, Vec<String>)>,
    resumed: usize,
    ignored: Option<ResumeSkip>,
}

impl Checkpoint {
    /// Path of the streaming partial CSV for `stem`.
    pub fn partial_path(out_dir: &Path, stem: &str) -> PathBuf {
        out_dir.join(format!("{stem}.partial.csv"))
    }

    /// Path of the manifest for `stem`.
    pub fn manifest_path(out_dir: &Path, stem: &str) -> PathBuf {
        out_dir.join(format!("{stem}.manifest"))
    }

    /// Opens a checkpoint for `results/<stem>.csv`-style output.
    ///
    /// With `resume` set, a valid existing manifest (matching `seed` and
    /// `config`) reloads its completed rows so the caller can skip them;
    /// otherwise any stale checkpoint files are discarded and the
    /// experiment starts clean.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures creating the checkpoint files.
    pub fn open(
        out_dir: &Path,
        stem: &str,
        header: &[&str],
        seed: u64,
        config: u64,
        resume: bool,
    ) -> io::Result<Self> {
        fs::create_dir_all(out_dir)?;
        let (rows, ignored) = if resume {
            let (rows, ignored) = load_completed(out_dir, stem, header.len(), seed, config);
            if let Some(skip) = &ignored {
                println!("  checkpoint {stem}: {skip}");
            }
            (rows, ignored)
        } else {
            (Vec::new(), None)
        };
        let resumed = rows.len();

        // Rewrite both files from the surviving prefix: this truncates
        // any half-written trailing row and normalizes stale content.
        let mut partial = File::create(Self::partial_path(out_dir, stem))?;
        writeln!(partial, "{}", header.join(","))?;
        let mut manifest = File::create(Self::manifest_path(out_dir, stem))?;
        writeln!(manifest, "seed={seed}")?;
        writeln!(manifest, "config={config:016x}")?;
        for (key, cells) in &rows {
            writeln!(partial, "{}", cells.join(","))?;
            writeln!(manifest, "done={key}")?;
        }
        partial.flush()?;
        manifest.flush()?;
        // Reopen in append mode so subsequent records stream.
        let partial = OpenOptions::new()
            .append(true)
            .open(Self::partial_path(out_dir, stem))?;
        let manifest = OpenOptions::new()
            .append(true)
            .open(Self::manifest_path(out_dir, stem))?;

        Ok(Checkpoint {
            out_dir: out_dir.to_path_buf(),
            stem: stem.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            partial,
            manifest,
            rows,
            resumed,
            ignored,
        })
    }

    /// Whether `key` was already completed (by this run or a resumed one).
    pub fn is_done(&self, key: &str) -> bool {
        self.rows.iter().any(|(k, _)| k == key)
    }

    /// Number of datapoints inherited from a previous run.
    pub fn resumed_rows(&self) -> usize {
        self.resumed
    }

    /// Why a requested resume ignored an existing checkpoint, if it did.
    /// `None` when resume succeeded, was not requested, or there was no
    /// prior checkpoint to ignore.
    pub fn ignored_checkpoint(&self) -> Option<&ResumeSkip> {
        self.ignored.as_ref()
    }

    /// All completed rows in completion order.
    pub fn rows(&self) -> &[(String, Vec<String>)] {
        &self.rows
    }

    /// Records one completed datapoint durably: the row is flushed to the
    /// partial CSV before its `done=` manifest entry is written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    ///
    /// # Panics
    ///
    /// Panics when the cell count does not match the header or the key
    /// was already recorded.
    pub fn record(&mut self, key: &str, cells: Vec<String>) -> io::Result<()> {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        assert!(!self.is_done(key), "datapoint {key:?} recorded twice");
        writeln!(self.partial, "{}", cells.join(","))?;
        self.partial.flush()?;
        writeln!(self.manifest, "done={key}")?;
        self.manifest.flush()?;
        self.rows.push((key.to_string(), cells));
        Ok(())
    }

    /// Promotes the partial CSV to the final `results/<stem>.csv` and
    /// removes the checkpoint files. Returns the final path.
    ///
    /// The final CSV lands via write-temp + fsync + rename
    /// ([`adapt_service::persist::atomic_write`]) and the checkpoint
    /// files are removed only *after* the rename: a kill anywhere in
    /// `finalize` leaves either the durable final CSV or an intact
    /// partial + manifest pair to resume from — never a torn final file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures writing the final file.
    pub fn finalize(self) -> io::Result<PathBuf> {
        self.finalize_with_crash(adapt_service::persist::CrashPoint::None)
    }

    /// `finalize` with an injectable crash point for durability tests.
    /// When the injected kill fires, the final CSV has not been
    /// published and the checkpoint files survive untouched.
    fn finalize_with_crash(self, crash: adapt_service::persist::CrashPoint) -> io::Result<PathBuf> {
        let path = self.out_dir.join(format!("{}.csv", self.stem));
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for (_, cells) in &self.rows {
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        let published =
            adapt_service::persist::atomic_write_with_crash(&path, out.as_bytes(), true, crash)?;
        if !published {
            // Injected kill: behave like the process died here — the
            // checkpoint files stay for the next run to resume.
            return Err(io::Error::other("finalize killed at injected crash point"));
        }
        let _ = fs::remove_file(Self::partial_path(&self.out_dir, &self.stem));
        let _ = fs::remove_file(Self::manifest_path(&self.out_dir, &self.stem));
        println!("  wrote {}", path.display());
        Ok(path)
    }
}

/// Loads the completed rows of a prior run. Returns no rows when the
/// checkpoint is absent or unparsable; when the checkpoint exists but was
/// produced under a different seed/configuration, also reports *why* it
/// was ignored so the caller can warn instead of silently recomputing.
fn load_completed(
    out_dir: &Path,
    stem: &str,
    header_len: usize,
    seed: u64,
    config: u64,
) -> (Vec<(String, Vec<String>)>, Option<ResumeSkip>) {
    let Ok(manifest) = fs::read_to_string(Checkpoint::manifest_path(out_dir, stem)) else {
        return (Vec::new(), None);
    };
    let Ok(partial) = fs::read_to_string(Checkpoint::partial_path(out_dir, stem)) else {
        return (Vec::new(), None);
    };
    let mut old_seed = String::new();
    let mut old_config = String::new();
    let mut done: Vec<String> = Vec::new();
    for line in manifest.lines() {
        if let Some(v) = line.strip_prefix("seed=") {
            old_seed = v.trim().to_string();
        } else if let Some(v) = line.strip_prefix("config=") {
            old_config = v.trim().to_string();
        } else if let Some(v) = line.strip_prefix("done=") {
            done.push(v.to_string());
        }
    }
    if old_seed != seed.to_string() {
        return (
            Vec::new(),
            Some(ResumeSkip::SeedChanged {
                old: old_seed,
                new: seed,
            }),
        );
    }
    if old_config != format!("{config:016x}") {
        return (
            Vec::new(),
            Some(ResumeSkip::ConfigChanged {
                old: old_config,
                new: config,
            }),
        );
    }
    // Data rows follow the header; the i-th row belongs to the i-th
    // `done=` key. A row without a matching key (killed mid-write) is
    // dropped and recomputed.
    let mut rows: Vec<Vec<String>> = partial
        .lines()
        .skip(1)
        .map(|l| l.split(',').map(|c| c.to_string()).collect())
        .collect();
    // A crash can truncate the file mid-row even after the row's
    // `done=` entry hit the manifest (the bytes, not the write order,
    // are what the disk kept). Such a row has fewer cells than the
    // header; resuming it would hand consumers a short row they index
    // out of bounds. Drop it — and anything after it — loudly and let
    // those datapoints recompute.
    if let Some(bad) = rows.iter().position(|r| r.len() != header_len) {
        println!(
            "  checkpoint {stem}: dropping {} malformed trailing row(s) \
             (row {} has {} of {} cells, truncated write?); recomputing them",
            rows.len() - bad,
            bad + 1,
            rows[bad].len(),
            header_len
        );
        rows.truncate(bad);
    }
    (done.into_iter().zip(rows).collect(), None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("adapt_ckpt_tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    const HDR: &[&str] = &["bench", "fidelity"];

    #[test]
    fn resume_reloads_completed_rows() {
        let dir = tmp("resume");
        let mut ck = Checkpoint::open(&dir, "exp", HDR, 7, 0xABCD, false).unwrap();
        ck.record("BV-7", vec!["BV-7".into(), "0.9".into()])
            .unwrap();
        ck.record("QFT-6A", vec!["QFT-6A".into(), "0.8".into()])
            .unwrap();
        drop(ck); // simulate a kill: no finalize

        let ck = Checkpoint::open(&dir, "exp", HDR, 7, 0xABCD, true).unwrap();
        assert_eq!(ck.resumed_rows(), 2);
        assert!(ck.is_done("BV-7"));
        assert!(ck.is_done("QFT-6A"));
        assert!(!ck.is_done("QAOA-8A"));
        assert_eq!(ck.rows()[1].1[1], "0.8");
    }

    #[test]
    fn seed_or_config_mismatch_invalidates() {
        let dir = tmp("mismatch");
        let mut ck = Checkpoint::open(&dir, "exp", HDR, 7, 0xABCD, false).unwrap();
        ck.record("BV-7", vec!["BV-7".into(), "0.9".into()])
            .unwrap();
        drop(ck);
        let other_seed = Checkpoint::open(&dir, "exp", HDR, 8, 0xABCD, true).unwrap();
        assert_eq!(other_seed.resumed_rows(), 0);
        assert_eq!(
            other_seed.ignored_checkpoint(),
            Some(&ResumeSkip::SeedChanged {
                old: "7".into(),
                new: 8,
            })
        );
        drop(other_seed);
        // (the failed resume rewrote the checkpoint under seed 8)
        let other_cfg = Checkpoint::open(&dir, "exp", HDR, 8, 0xEEEE, true).unwrap();
        assert_eq!(other_cfg.resumed_rows(), 0);
        assert_eq!(
            other_cfg.ignored_checkpoint(),
            Some(&ResumeSkip::ConfigChanged {
                old: format!("{:016x}", 0xABCDu64),
                new: 0xEEEE,
            })
        );
    }

    #[test]
    fn config_mismatch_reports_one_line_warning_not_silence() {
        let dir = tmp("warn");
        let mut ck = Checkpoint::open(&dir, "exp", HDR, 7, 0x1111, false).unwrap();
        ck.record("BV-7", vec!["BV-7".into(), "0.9".into()])
            .unwrap();
        drop(ck);

        // Same seed, different config hash: everything recomputes, and the
        // reason is surfaced (the `open` path prints its Display form).
        let ck = Checkpoint::open(&dir, "exp", HDR, 7, 0x2222, true).unwrap();
        assert_eq!(ck.resumed_rows(), 0);
        let skip = ck.ignored_checkpoint().expect("mismatch must be reported");
        let msg = skip.to_string();
        assert!(
            msg.contains("config changed, ignoring checkpoint"),
            "unexpected warning: {msg}"
        );
        assert!(msg.contains(&format!("old={:016x}", 0x1111u64)), "{msg}");
        assert!(msg.contains(&format!("new={:016x}", 0x2222u64)), "{msg}");

        // A matching re-open resumes cleanly with no warning.
        drop(ck);
        let mut ck = Checkpoint::open(&dir, "exp", HDR, 7, 0x2222, false).unwrap();
        ck.record("BV-7", vec!["BV-7".into(), "0.9".into()])
            .unwrap();
        drop(ck);
        let ck = Checkpoint::open(&dir, "exp", HDR, 7, 0x2222, true).unwrap();
        assert_eq!(ck.resumed_rows(), 1);
        assert_eq!(ck.ignored_checkpoint(), None);
    }

    #[test]
    fn without_resume_flag_checkpoint_restarts() {
        let dir = tmp("fresh");
        let mut ck = Checkpoint::open(&dir, "exp", HDR, 7, 1, false).unwrap();
        ck.record("BV-7", vec!["BV-7".into(), "0.9".into()])
            .unwrap();
        drop(ck);
        let ck = Checkpoint::open(&dir, "exp", HDR, 7, 1, false).unwrap();
        assert_eq!(ck.resumed_rows(), 0);
    }

    #[test]
    fn half_written_trailing_row_is_discarded() {
        let dir = tmp("torn");
        let mut ck = Checkpoint::open(&dir, "exp", HDR, 7, 1, false).unwrap();
        ck.record("BV-7", vec!["BV-7".into(), "0.9".into()])
            .unwrap();
        drop(ck);
        // Append a row that never got its done= entry (killed mid-write).
        let mut f = OpenOptions::new()
            .append(true)
            .open(Checkpoint::partial_path(&dir, "exp"))
            .unwrap();
        write!(f, "QFT-6A,0.").unwrap();
        drop(f);
        let ck = Checkpoint::open(&dir, "exp", HDR, 7, 1, true).unwrap();
        assert_eq!(ck.resumed_rows(), 1);
        assert!(!ck.is_done("QFT-6A"));
    }

    #[test]
    fn byte_truncated_trailing_row_is_dropped_and_recomputed() {
        let dir = tmp("truncated");
        const WIDE: &[&str] = &["bench", "policy", "fidelity"];
        let mut ck = Checkpoint::open(&dir, "exp", WIDE, 7, 1, false).unwrap();
        ck.record("BV-7", vec!["BV-7".into(), "adapt".into(), "0.9".into()])
            .unwrap();
        ck.record(
            "QFT-6A",
            vec!["QFT-6A".into(), "adapt".into(), "0.8".into()],
        )
        .unwrap();
        drop(ck);
        // Chop bytes off the end of the partial CSV so the trailing row
        // loses a whole column, even though its done= entry survived —
        // what a crash that lost the last page leaves behind.
        let path = Checkpoint::partial_path(&dir, "exp");
        let content = fs::read_to_string(&path).unwrap();
        fs::write(&path, &content[..content.len() - 10]).unwrap();

        // Before the cell-count validation this resume handed back a
        // 2-cell row for QFT-6A, and any consumer indexing past it
        // aborted the whole resumed run.
        let ck = Checkpoint::open(&dir, "exp", WIDE, 7, 1, true).unwrap();
        assert_eq!(ck.resumed_rows(), 1);
        assert!(ck.is_done("BV-7"));
        assert!(!ck.is_done("QFT-6A"), "truncated row must be recomputed");
        for (_, cells) in ck.rows() {
            assert_eq!(cells.len(), WIDE.len(), "resumed rows are whole");
        }
    }

    #[test]
    fn finalize_promotes_and_cleans_up() {
        let dir = tmp("final");
        let mut ck = Checkpoint::open(&dir, "exp", HDR, 7, 1, false).unwrap();
        ck.record("BV-7", vec!["BV-7".into(), "0.9".into()])
            .unwrap();
        let path = ck.finalize().unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "bench,fidelity\nBV-7,0.9\n");
        assert!(!Checkpoint::partial_path(&dir, "exp").exists());
        assert!(!Checkpoint::manifest_path(&dir, "exp").exists());
    }

    #[test]
    fn finalize_killed_before_rename_leaves_checkpoint_resumable() {
        use adapt_service::persist::CrashPoint;
        let dir = tmp("kill_finalize");
        let mut ck = Checkpoint::open(&dir, "exp", HDR, 7, 1, false).unwrap();
        ck.record("BV-7", vec!["BV-7".into(), "0.9".into()])
            .unwrap();
        ck.record("QFT-6A", vec!["QFT-6A".into(), "0.8".into()])
            .unwrap();

        // Kill between writing the temp file and renaming it into place:
        // the final CSV must not exist (not even partially written), and
        // the partial + manifest pair must survive for resume.
        let err = ck
            .finalize_with_crash(CrashPoint::BeforeRename)
            .expect_err("injected kill must surface as an error");
        assert!(err.to_string().contains("injected crash point"), "{err}");
        let final_path = dir.join("exp.csv");
        assert!(!final_path.exists(), "torn final CSV published");
        assert!(Checkpoint::partial_path(&dir, "exp").exists());
        assert!(Checkpoint::manifest_path(&dir, "exp").exists());

        // Resume sees every completed row, and a clean finalize then
        // publishes the identical final CSV and cleans up.
        let ck = Checkpoint::open(&dir, "exp", HDR, 7, 1, true).unwrap();
        assert_eq!(ck.resumed_rows(), 2);
        let path = ck.finalize().unwrap();
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            "bench,fidelity\nBV-7,0.9\nQFT-6A,0.8\n"
        );
        assert!(!Checkpoint::partial_path(&dir, "exp").exists());
        assert!(!Checkpoint::manifest_path(&dir, "exp").exists());
        // The clean finalize reused (and renamed away) the staging temp
        // the killed attempt left behind.
        assert!(!adapt_service::persist::staging_path(&final_path).exists());
    }

    #[test]
    fn config_hash_is_order_and_boundary_sensitive() {
        assert_ne!(config_hash(&["ab", "c"]), config_hash(&["a", "bc"]));
        assert_ne!(config_hash(&["a", "b"]), config_hash(&["b", "a"]));
        assert_eq!(config_hash(&["x", "y"]), config_hash(&["x", "y"]));
    }

    #[test]
    #[should_panic(expected = "recorded twice")]
    fn duplicate_keys_are_rejected() {
        let dir = tmp("dup");
        let mut ck = Checkpoint::open(&dir, "exp", HDR, 7, 1, false).unwrap();
        ck.record("BV-7", vec!["BV-7".into(), "0.9".into()])
            .unwrap();
        let _ = ck.record("BV-7", vec!["BV-7".into(), "0.9".into()]);
    }
}
