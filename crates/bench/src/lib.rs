//! # bench-harness — experiment runner for the ADAPT reproduction
//!
//! One binary per table/figure of the paper (see `src/bin/`), sharing this
//! library: experiment configuration, policy sweeps, CSV emission and
//! terminal tables. Run everything with
//! `cargo run -p bench-harness --release --bin all_experiments`.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod experiments;
pub mod probes;
pub mod report;
pub mod runner;

pub use checkpoint::Checkpoint;
pub use report::{Csv, Table};
pub use runner::{policy_sweep, BenchResult, ExperimentCfg, SuiteFaultSummary};
