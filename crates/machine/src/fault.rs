//! Seeded fault injection for backend jobs.
//!
//! Real quantum backends fail in mundane ways that have nothing to do
//! with qubit physics: jobs vanish from queues, time out, come back with
//! fewer shots than requested, lose a readout register, or silently run
//! against calibration data that has drifted since the program was
//! compiled. [`FaultyBackend`] wraps a [`Machine`] and injects exactly
//! these failure modes, deterministically under a seed, so the resilience
//! of everything upstream (retry loops, the ADAPT search, experiment
//! drivers) can be tested end-to-end without a flaky test suite.
//!
//! Determinism contract: every job the backend receives gets a global
//! job index from an atomic counter, and all fault draws for that job
//! come from a [`SeedSpawner`]-derived stream keyed on the index alone.
//! The fault sequence therefore depends only on `(seed, job order)` —
//! not on wall-clock, thread interleaving inside a job, or the circuit
//! being run.

use crate::backend::{Anomaly, Backend, ShotBatch};
use crate::executor::{ExecError, ExecutionConfig, Machine};
use device::{Device, SeedSpawner};
use qcirc::{Circuit, Counts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use transpiler::{try_schedule, SchedulePolicy, TimedCircuit};

/// Per-fault-class probabilities and parameters of an injection campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability a job fails outright (retryable).
    pub transient_failure: f64,
    /// Probability a job times out (retryable).
    pub timeout: f64,
    /// Wall-clock budget reported in injected timeout errors (ms).
    pub timeout_budget_ms: u64,
    /// Probability a job delivers only part of its shots.
    pub shot_truncation: f64,
    /// Minimum delivered fraction when truncation strikes; the actual
    /// fraction is uniform in `[truncation_floor, 1)`.
    pub truncation_floor: f64,
    /// Probability a job loses one classical readout bit.
    pub readout_dropout: f64,
    /// After this many jobs, the device calibration silently drifts by
    /// one cycle and every later batch is flagged stale.
    pub staleness_after_jobs: Option<u64>,
}

impl FaultProfile {
    /// No faults at all: the wrapped machine's behaviour, batch-shaped.
    pub fn none() -> Self {
        FaultProfile {
            transient_failure: 0.0,
            timeout: 0.0,
            timeout_budget_ms: 30_000,
            shot_truncation: 0.0,
            truncation_floor: 1.0,
            readout_dropout: 0.0,
            staleness_after_jobs: None,
        }
    }

    /// Transient job failures and timeouts only — the classic flaky queue.
    pub fn flaky() -> Self {
        FaultProfile {
            transient_failure: 0.10,
            timeout: 0.05,
            ..FaultProfile::none()
        }
    }

    /// The full menagerie at realistic rates: ≥10% transient failures,
    /// frequent truncation, occasional register dropout, and one
    /// calibration-staleness event early enough to land mid-search.
    pub fn lossy() -> Self {
        FaultProfile {
            transient_failure: 0.10,
            timeout: 0.05,
            timeout_budget_ms: 30_000,
            shot_truncation: 0.20,
            truncation_floor: 0.40,
            readout_dropout: 0.05,
            staleness_after_jobs: Some(12),
        }
    }

    /// Aggressive rates for stress tests.
    pub fn brutal() -> Self {
        FaultProfile {
            transient_failure: 0.25,
            timeout: 0.10,
            timeout_budget_ms: 10_000,
            shot_truncation: 0.30,
            truncation_floor: 0.25,
            readout_dropout: 0.10,
            staleness_after_jobs: Some(6),
        }
    }

    /// Looks up a named profile (`none`, `flaky`, `lossy`, `brutal`) —
    /// the vocabulary of the experiment runner's `--faults` flag.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "none" => Some(FaultProfile::none()),
            "flaky" => Some(FaultProfile::flaky()),
            "lossy" => Some(FaultProfile::lossy()),
            "brutal" => Some(FaultProfile::brutal()),
            _ => None,
        }
    }

    /// The named profiles accepted by [`FaultProfile::by_name`].
    pub fn known_names() -> &'static [&'static str] {
        &["none", "flaky", "lossy", "brutal"]
    }
}

/// The fault decisions for one job, fully determined by `(seed, job)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobFaults {
    /// Global job index.
    pub job: u64,
    /// Fail the job outright.
    pub fail: bool,
    /// Time the job out.
    pub timeout: bool,
    /// Fraction of requested shots to deliver (1.0 = all).
    pub deliver_fraction: f64,
    /// Raw dropout draw; reduced modulo the register width at apply time.
    pub dropout_bit: Option<u64>,
}

/// Deterministic fault schedule: maps an atomic job counter to
/// [`JobFaults`] via seed derivation.
#[derive(Debug)]
pub struct FaultPlan {
    profile: FaultProfile,
    spawner: SeedSpawner,
    next_job: AtomicU64,
}

impl FaultPlan {
    /// Creates a plan for a profile under a master seed.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        FaultPlan {
            profile,
            spawner: SeedSpawner::new(seed),
            next_job: AtomicU64::new(0),
        }
    }

    /// The profile this plan draws from.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Number of jobs dispatched so far.
    pub fn jobs_dispatched(&self) -> u64 {
        self.next_job.load(Ordering::SeqCst)
    }

    /// Claims the next job index and samples its faults.
    pub fn next_job_faults(&self) -> JobFaults {
        let job = self.next_job.fetch_add(1, Ordering::SeqCst);
        self.faults_for(job)
    }

    /// The fault decisions for a specific job index (pure function of
    /// the plan seed — used by tests to predict the schedule).
    pub fn faults_for(&self, job: u64) -> JobFaults {
        let mut rng = StdRng::seed_from_u64(self.spawner.derive(job));
        // Draw every class unconditionally so each class consumes a fixed
        // position in the stream; decisions stay independent of each other.
        let fail = rng.gen_bool(self.profile.transient_failure);
        let timeout = rng.gen_bool(self.profile.timeout);
        let truncated = rng.gen_bool(self.profile.shot_truncation);
        let fraction_draw: f64 = rng.gen();
        let dropout = rng.gen_bool(self.profile.readout_dropout);
        let dropout_draw: u64 = rng.gen();
        let deliver_fraction = if truncated {
            let floor = self.profile.truncation_floor.clamp(0.0, 1.0);
            floor + (1.0 - floor) * fraction_draw
        } else {
            1.0
        };
        JobFaults {
            job,
            fail,
            timeout,
            deliver_fraction,
            dropout_bit: dropout.then_some(dropout_draw),
        }
    }

    /// Whether calibration has gone stale by the time `job` runs.
    pub fn stale_at(&self, job: u64) -> bool {
        self.profile.staleness_after_jobs.is_some_and(|n| job >= n)
    }
}

/// Tallies of injected faults, for end-of-run reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Jobs the backend received.
    pub jobs: u64,
    /// Jobs failed outright.
    pub failures: u64,
    /// Jobs timed out.
    pub timeouts: u64,
    /// Batches delivered with truncated shots.
    pub truncated: u64,
    /// Batches delivered with a dropped readout bit.
    pub dropouts: u64,
    /// Batches that ran under stale calibration.
    pub stale_batches: u64,
}

impl std::fmt::Display for FaultCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} jobs: {} failed, {} timed out, {} truncated, {} dropouts, {} stale",
            self.jobs,
            self.failures,
            self.timeouts,
            self.truncated,
            self.dropouts,
            self.stale_batches
        )
    }
}

/// A [`Machine`] wrapper that injects seeded faults into every job.
///
/// # Examples
///
/// ```
/// use device::Device;
/// use machine::{Backend, ExecutionConfig, FaultProfile, FaultyBackend, Machine};
/// use qcirc::Circuit;
///
/// let machine = Machine::new(Device::ibmq_rome(3));
/// let backend = FaultyBackend::new(machine, FaultProfile::flaky(), 7);
/// let mut c = Circuit::new(1);
/// c.h(0).measure(0, 0);
/// let cfg = ExecutionConfig { shots: 64, trajectories: 4, seed: 1, threads: 1 };
/// // Some jobs fail, some succeed — deterministically under seed 7.
/// let mut outcomes = Vec::new();
/// for _ in 0..20 {
///     outcomes.push(backend.execute(&c, &cfg).is_ok());
/// }
/// assert!(outcomes.iter().any(|&ok| ok));
/// assert!(outcomes.iter().any(|&ok| !ok));
/// ```
#[derive(Debug)]
pub struct FaultyBackend {
    /// The wrapped machine; behind a lock because calibration staleness
    /// swaps the device mid-run.
    inner: RwLock<Machine>,
    plan: FaultPlan,
    /// Whether the staleness transition has been applied yet.
    drifted: AtomicU64,
    counts: Mutex<FaultCounts>,
}

impl FaultyBackend {
    /// Wraps a machine with a fault profile under a master seed.
    pub fn new(machine: Machine, profile: FaultProfile, seed: u64) -> Self {
        FaultyBackend {
            inner: RwLock::new(machine),
            plan: FaultPlan::new(profile, seed),
            drifted: AtomicU64::new(0),
            counts: Mutex::new(FaultCounts::default()),
        }
    }

    /// The deterministic fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of the injected-fault tallies.
    pub fn injected(&self) -> FaultCounts {
        *self.counts.lock().expect("fault counter lock")
    }

    /// Applies the staleness transition (once) when `job` crosses the
    /// profile threshold, swapping the machine's device for its
    /// next-calibration-cycle drift. Returns the stale cycle when the
    /// batch should be flagged.
    fn maybe_drift(&self, job: u64) -> Option<u64> {
        if !self.plan.stale_at(job) {
            return None;
        }
        if self.drifted.swap(1, Ordering::SeqCst) == 0 {
            let mut m = self.inner.write().expect("machine lock");
            let toggles = *m.toggles();
            let next_cycle = m.device().calibration().cycle + 1;
            let drifted = m.device().at_calibration_cycle(next_cycle);
            *m = Machine::with_toggles(drifted, toggles);
        }
        let cycle = self
            .inner
            .read()
            .expect("machine lock")
            .device()
            .calibration()
            .cycle;
        Some(cycle)
    }

    fn run(&self, timed: &TimedCircuit, config: &ExecutionConfig) -> Result<ShotBatch, ExecError> {
        let faults = self.plan.next_job_faults();
        {
            let mut c = self.counts.lock().expect("fault counter lock");
            c.jobs += 1;
            if faults.fail {
                c.failures += 1;
            } else if faults.timeout {
                c.timeouts += 1;
            }
        }
        let stale_cycle = self.maybe_drift(faults.job);
        if faults.fail {
            return Err(ExecError::JobFailed {
                job: faults.job,
                reason: "injected transient backend failure".to_string(),
            });
        }
        if faults.timeout {
            return Err(ExecError::Timeout {
                job: faults.job,
                budget_ms: self.plan.profile.timeout_budget_ms,
            });
        }

        let delivered_shots = ((config.shots as f64 * faults.deliver_fraction).round() as u64)
            .clamp(1, config.shots.max(1));
        let run_config = ExecutionConfig {
            shots: delivered_shots,
            ..*config
        };
        let counts = self
            .inner
            .read()
            .expect("machine lock")
            .execute_timed(timed, &run_config)?;

        let mut anomalies = Vec::new();
        if delivered_shots < config.shots {
            anomalies.push(Anomaly::ShotTruncation {
                requested: config.shots,
                delivered: delivered_shots,
            });
        }
        let counts = if let Some(raw) = faults.dropout_bit {
            if counts.num_bits() > 0 {
                let clbit = (raw % counts.num_bits() as u64) as usize;
                anomalies.push(Anomaly::ReadoutDropout { clbit });
                drop_clbit(&counts, clbit)
            } else {
                counts
            }
        } else {
            counts
        };
        if let Some(cycle) = stale_cycle {
            anomalies.push(Anomaly::StaleCalibration { cycle });
        }

        {
            let mut c = self.counts.lock().expect("fault counter lock");
            for a in &anomalies {
                match a {
                    Anomaly::ShotTruncation { .. } => c.truncated += 1,
                    Anomaly::ReadoutDropout { .. } => c.dropouts += 1,
                    Anomaly::StaleCalibration { .. } => c.stale_batches += 1,
                }
            }
        }
        Ok(ShotBatch {
            counts,
            requested_shots: config.shots,
            anomalies,
        })
    }
}

/// Rebuilds a histogram with classical bit `clbit` forced to 0 in every
/// outcome — the signature of a lost readout register.
fn drop_clbit(counts: &Counts, clbit: usize) -> Counts {
    let mut out = Counts::new(counts.num_bits());
    for (k, v) in counts.iter() {
        out.record_many(k & !(1u64 << clbit), v);
    }
    out
}

impl Backend for FaultyBackend {
    fn execute(&self, circuit: &Circuit, config: &ExecutionConfig) -> Result<ShotBatch, ExecError> {
        let timed = {
            let m = self.inner.read().expect("machine lock");
            try_schedule(circuit, m.device(), SchedulePolicy::Alap)?
        };
        self.run(&timed, config)
    }

    fn execute_timed(
        &self,
        timed: &TimedCircuit,
        config: &ExecutionConfig,
    ) -> Result<ShotBatch, ExecError> {
        self.run(timed, config)
    }

    fn device_snapshot(&self) -> Device {
        self.inner.read().expect("machine lock").device().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        c
    }

    fn cfg() -> ExecutionConfig {
        ExecutionConfig {
            shots: 200,
            trajectories: 8,
            seed: 9,
            threads: 1,
        }
    }

    #[test]
    fn fault_plan_is_deterministic_and_index_addressable() {
        let a = FaultPlan::new(FaultProfile::lossy(), 123);
        let b = FaultPlan::new(FaultProfile::lossy(), 123);
        for job in 0..200 {
            assert_eq!(a.faults_for(job), b.faults_for(job));
        }
        let c = FaultPlan::new(FaultProfile::lossy(), 124);
        let differs = (0..200).any(|j| a.faults_for(j) != c.faults_for(j));
        assert!(differs, "different seeds must give different schedules");
    }

    #[test]
    fn fault_rates_track_profile() {
        let plan = FaultPlan::new(FaultProfile::lossy(), 5);
        let n = 4000;
        let fails = (0..n).filter(|&j| plan.faults_for(j).fail).count();
        let frac = fails as f64 / n as f64;
        assert!((frac - 0.10).abs() < 0.02, "failure rate {frac}");
        let truncated = (0..n)
            .filter(|&j| plan.faults_for(j).deliver_fraction < 1.0)
            .count();
        let tfrac = truncated as f64 / n as f64;
        assert!((tfrac - 0.20).abs() < 0.03, "truncation rate {tfrac}");
    }

    #[test]
    fn none_profile_is_transparent() {
        let m = Machine::new(Device::ibmq_rome(3));
        let direct = m.execute(&bell(), &cfg()).unwrap();
        let backend =
            FaultyBackend::new(Machine::new(Device::ibmq_rome(3)), FaultProfile::none(), 1);
        let batch = Backend::execute(&backend, &bell(), &cfg()).unwrap();
        assert!(batch.is_complete());
        assert_eq!(batch.counts, direct);
        assert_eq!(backend.injected().failures, 0);
    }

    #[test]
    fn truncation_delivers_partial_batches() {
        let profile = FaultProfile {
            shot_truncation: 1.0,
            truncation_floor: 0.5,
            ..FaultProfile::none()
        };
        let backend = FaultyBackend::new(Machine::new(Device::ibmq_rome(3)), profile, 3);
        let batch = Backend::execute(&backend, &bell(), &cfg()).unwrap();
        assert!(!batch.is_complete());
        assert!(batch.delivered_shots() < 200);
        assert!(batch.delivered_fraction() >= 0.5 - 1e-9);
        assert!(matches!(
            batch.anomalies[0],
            Anomaly::ShotTruncation { requested: 200, .. }
        ));
        assert_eq!(backend.injected().truncated, 1);
    }

    #[test]
    fn dropout_zeroes_one_register_bit() {
        let profile = FaultProfile {
            readout_dropout: 1.0,
            ..FaultProfile::none()
        };
        let backend = FaultyBackend::new(Machine::new(Device::ibmq_rome(3)), profile, 11);
        let batch = Backend::execute(&backend, &bell(), &cfg()).unwrap();
        assert!(batch.has_dropout());
        let Some(Anomaly::ReadoutDropout { clbit }) = batch
            .anomalies
            .iter()
            .find(|a| matches!(a, Anomaly::ReadoutDropout { .. }))
        else {
            panic!("expected a dropout anomaly");
        };
        for (outcome, _) in batch.counts.iter() {
            assert_eq!(outcome >> clbit & 1, 0, "dropped bit must read 0");
        }
    }

    #[test]
    fn staleness_drifts_calibration_once_and_flags_batches() {
        let profile = FaultProfile {
            staleness_after_jobs: Some(3),
            ..FaultProfile::none()
        };
        let backend = FaultyBackend::new(Machine::new(Device::ibmq_rome(3)), profile, 2);
        let before = backend.device_snapshot();
        for _ in 0..3 {
            let batch = Backend::execute(&backend, &bell(), &cfg()).unwrap();
            assert!(batch.anomalies.is_empty());
        }
        let batch = Backend::execute(&backend, &bell(), &cfg()).unwrap();
        assert!(batch
            .anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::StaleCalibration { cycle: 1 })));
        let after = backend.device_snapshot();
        assert_ne!(before.calibration(), after.calibration());
        assert_eq!(after.calibration().cycle, 1);
        assert_eq!(backend.injected().stale_batches, 1);
    }

    #[test]
    fn injected_failures_are_transient_typed() {
        let profile = FaultProfile {
            transient_failure: 1.0,
            ..FaultProfile::none()
        };
        let backend = FaultyBackend::new(Machine::new(Device::ibmq_rome(3)), profile, 4);
        let err = Backend::execute(&backend, &bell(), &cfg()).unwrap_err();
        assert!(err.is_transient());
        assert!(matches!(err, ExecError::JobFailed { job: 0, .. }));
    }

    #[test]
    fn fault_sequence_reproducible_across_backends() {
        let mk = || {
            FaultyBackend::new(
                Machine::new(Device::ibmq_rome(3)),
                FaultProfile::lossy(),
                77,
            )
        };
        let run = |b: &FaultyBackend| -> Vec<bool> {
            (0..30)
                .map(|_| Backend::execute(b, &bell(), &cfg()).is_ok())
                .collect()
        };
        assert_eq!(run(&mk()), run(&mk()));
    }

    #[test]
    fn profile_names_round_trip() {
        for name in FaultProfile::known_names() {
            assert!(FaultProfile::by_name(name).is_some(), "{name}");
        }
        assert!(FaultProfile::by_name("nope").is_none());
    }
}
