//! The backend abstraction: anything that can run circuits for counts.
//!
//! The ADAPT framework upstream of this crate (`core`, `benchmarks`) does
//! not care whether counts come from the pristine trajectory [`Machine`],
//! a [`crate::fault::FaultyBackend`] injecting failures, or a
//! [`crate::resilient::ResilientExecutor`] retrying around them — only
//! that a job either yields a [`ShotBatch`] or a typed
//! [`ExecError`]. This module defines that seam.
//!
//! A [`ShotBatch`] is deliberately richer than bare [`Counts`]: real
//! backends deliver *partial* results (a job cancelled after 60% of its
//! shots is still data), and resilient pipelines must weight such batches
//! by delivered shots rather than discard them. The batch therefore
//! carries the requested shot count and a list of [`Anomaly`] flags
//! describing every degradation that occurred while producing it.

use crate::executor::{ExecError, ExecutionConfig, Machine};
use device::Device;
use qcirc::{Circuit, Counts};
use transpiler::TimedCircuit;

/// A degradation that occurred while producing a batch. Anomalies are not
/// errors: the counts are usable, but downstream consumers may weight,
/// flag, or retry based on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anomaly {
    /// Fewer shots were delivered than requested.
    ShotTruncation {
        /// Shots the caller asked for.
        requested: u64,
        /// Shots actually delivered.
        delivered: u64,
    },
    /// One classical register bit was lost during readout; it reads as 0
    /// in every outcome of this batch.
    ReadoutDropout {
        /// The affected classical bit.
        clbit: usize,
    },
    /// The batch ran against calibration data older than the device's
    /// current drift state.
    StaleCalibration {
        /// Calibration cycle the batch actually ran under.
        cycle: u64,
    },
}

impl std::fmt::Display for Anomaly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Anomaly::ShotTruncation {
                requested,
                delivered,
            } => write!(f, "shot truncation: {delivered}/{requested} delivered"),
            Anomaly::ReadoutDropout { clbit } => {
                write!(f, "readout dropout on classical bit {clbit}")
            }
            Anomaly::StaleCalibration { cycle } => {
                write!(f, "ran under stale calibration (cycle {cycle})")
            }
        }
    }
}

/// The result of one backend job: counts plus delivery metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ShotBatch {
    /// The measured histogram (its `total()` is the delivered shots).
    pub counts: Counts,
    /// Shots the caller requested for this job.
    pub requested_shots: u64,
    /// Degradations that occurred while producing this batch.
    pub anomalies: Vec<Anomaly>,
}

impl ShotBatch {
    /// A clean, fully delivered batch.
    pub fn complete(counts: Counts, requested_shots: u64) -> Self {
        ShotBatch {
            counts,
            requested_shots,
            anomalies: Vec::new(),
        }
    }

    /// Shots actually delivered.
    pub fn delivered_shots(&self) -> u64 {
        self.counts.total()
    }

    /// Delivered fraction of the requested shots, in `[0, 1]`.
    pub fn delivered_fraction(&self) -> f64 {
        if self.requested_shots == 0 {
            1.0
        } else {
            self.delivered_shots() as f64 / self.requested_shots as f64
        }
    }

    /// Whether every requested shot arrived with no anomalies.
    pub fn is_complete(&self) -> bool {
        self.anomalies.is_empty() && self.delivered_shots() >= self.requested_shots
    }

    /// Whether any anomaly of the readout-dropout kind is present
    /// (dropout corrupts the distribution, unlike truncation which only
    /// widens its error bars).
    pub fn has_dropout(&self) -> bool {
        self.anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::ReadoutDropout { .. }))
    }

    /// Merges another batch of the same circuit into this one,
    /// accumulating counts, requested shots and anomalies. The merged
    /// histogram weights each batch by its delivered shots — exactly the
    /// partial-result weighting resilient executors need.
    ///
    /// # Panics
    ///
    /// Panics when the histograms' bit widths differ.
    pub fn absorb(&mut self, other: ShotBatch) {
        self.counts.merge(&other.counts);
        self.requested_shots += other.requested_shots;
        self.anomalies.extend(other.anomalies);
    }
}

/// One job of a batch submission: an already-scheduled circuit plus its
/// execution budget (shots, trajectories, seed, threads).
///
/// Per-job seeds are the caller's responsibility: derive them from a
/// [`device::SeedSpawner`] for independent jobs, or reuse one seed
/// across jobs for common-random-numbers comparisons (as the DD-mask
/// search does).
#[derive(Debug, Clone, Copy)]
pub struct JobSpec<'a> {
    /// The scheduled circuit to execute.
    pub timed: &'a TimedCircuit,
    /// Execution budget for this job.
    pub config: ExecutionConfig,
}

/// Anything that can execute circuits and deliver shot batches.
///
/// Implementations in this crate:
///
/// - [`Machine`]: the pristine trajectory simulator; always returns
///   complete batches and overrides [`Backend::execute_batch`] with a
///   scoped-thread parallel implementation.
/// - [`crate::fault::FaultyBackend`]: wraps a [`Machine`] and injects
///   seeded transient failures, timeouts, truncation, readout dropouts
///   and calibration staleness. Keeps the default (serial) batch path:
///   its fault schedule depends on job submission order, so in-order
///   dispatch is what keeps batches bit-identical to serial execution.
/// - [`crate::resilient::ResilientExecutor`]: wraps any backend with
///   retry/backoff and partial-result accumulation; each batch job runs
///   through its own full retry loop, in order.
pub trait Backend: Send + Sync {
    /// Schedules (ALAP) and executes a plain circuit.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ExecError`]; transient variants
    /// ([`ExecError::is_transient`]) may succeed on retry.
    fn execute(&self, circuit: &Circuit, config: &ExecutionConfig) -> Result<ShotBatch, ExecError>;

    /// Executes an already-scheduled circuit.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ExecError`]; transient variants
    /// ([`ExecError::is_transient`]) may succeed on retry.
    fn execute_timed(
        &self,
        timed: &TimedCircuit,
        config: &ExecutionConfig,
    ) -> Result<ShotBatch, ExecError>;

    /// Executes a batch of jobs, returning one result per job in
    /// submission order.
    ///
    /// # Determinism contract
    ///
    /// For every backend, `execute_batch(jobs)[i]` must equal
    /// `execute_timed(jobs[i].timed, &jobs[i].config)` called serially in
    /// submission order on a backend in the same state — batching is a
    /// throughput optimization, never a semantic one. The default
    /// implementation *is* that serial loop, which is what keeps
    /// stateful backends (fault injectors with job counters, retry
    /// wrappers) exactly equivalent to serial execution. [`Machine`]
    /// overrides it with scoped-thread parallelism, which preserves the
    /// contract because its executions are stateless and thread-count
    /// invariant.
    ///
    /// The contract holds *across simulator routing* too: a batch may mix
    /// CHP-routed Clifford jobs with state-vector jobs, and each job's
    /// result is still a pure function of `(timed, config)` — engine
    /// selection is deterministic per plan and each engine's trajectory
    /// RNG stream depends only on the job seed.
    ///
    /// Per-job errors are returned in the corresponding slot rather than
    /// aborting the batch, so callers keep their per-job degradation
    /// semantics.
    fn execute_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<Result<ShotBatch, ExecError>> {
        jobs.iter()
            .map(|j| self.execute_timed(j.timed, &j.config))
            .collect()
    }

    /// A snapshot of the device this backend currently runs against.
    /// Returned by value because fault-injecting backends drift their
    /// calibration mid-run.
    fn device_snapshot(&self) -> Device;
}

impl Backend for Machine {
    fn execute(&self, circuit: &Circuit, config: &ExecutionConfig) -> Result<ShotBatch, ExecError> {
        let counts = Machine::execute(self, circuit, config)?;
        Ok(ShotBatch::complete(counts, config.shots))
    }

    fn execute_timed(
        &self,
        timed: &TimedCircuit,
        config: &ExecutionConfig,
    ) -> Result<ShotBatch, ExecError> {
        let counts = Machine::execute_timed(self, timed, config)?;
        Ok(ShotBatch::complete(counts, config.shots))
    }

    fn execute_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<Result<ShotBatch, ExecError>> {
        self.execute_batch_jobs(jobs)
    }

    fn device_snapshot(&self) -> Device {
        self.device().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::Circuit;

    #[test]
    fn machine_backend_returns_complete_batches() {
        let m = Machine::new(Device::ibmq_rome(4));
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let cfg = ExecutionConfig {
            shots: 300,
            trajectories: 8,
            seed: 2,
            threads: 1,
        };
        let batch = Backend::execute(&m, &c, &cfg).unwrap();
        assert!(batch.is_complete());
        assert_eq!(batch.delivered_shots(), 300);
        assert_eq!(batch.delivered_fraction(), 1.0);
        assert!(!batch.has_dropout());
    }

    #[test]
    fn absorb_accumulates_counts_and_anomalies() {
        let mut a = ShotBatch::complete(
            {
                let mut c = Counts::new(1);
                c.record_many(0, 60);
                c
            },
            100,
        );
        a.anomalies.push(Anomaly::ShotTruncation {
            requested: 100,
            delivered: 60,
        });
        let b = ShotBatch::complete(
            {
                let mut c = Counts::new(1);
                c.record_many(1, 40);
                c
            },
            40,
        );
        a.absorb(b);
        assert_eq!(a.delivered_shots(), 100);
        assert_eq!(a.requested_shots, 140);
        assert_eq!(a.anomalies.len(), 1);
        // Weighting is by delivered shots: 60/100 zeros, 40/100 ones.
        assert!((a.counts.probability(0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn delivered_fraction_handles_zero_request() {
        let batch = ShotBatch::complete(Counts::new(1), 0);
        assert_eq!(batch.delivered_fraction(), 1.0);
        assert!(batch.is_complete());
    }

    #[test]
    fn backend_is_object_safe() {
        let m = Machine::new(Device::ibmq_rome(4));
        let b: &dyn Backend = &m;
        assert_eq!(b.device_snapshot().num_qubits(), 5);
    }

    #[test]
    fn machine_batch_is_bit_identical_to_serial() {
        use transpiler::{schedule, SchedulePolicy};
        let m = Machine::new(Device::ibmq_guadalupe(11));
        let circuits: Vec<_> = (0..5)
            .map(|k| {
                let mut c = Circuit::new(3);
                c.h(0).cx(0, 1);
                for _ in 0..k {
                    c.t(2);
                }
                c.cx(1, 2).measure_all();
                schedule(&c, m.device(), SchedulePolicy::Alap)
            })
            .collect();
        let jobs: Vec<JobSpec> = circuits
            .iter()
            .enumerate()
            .map(|(i, timed)| JobSpec {
                timed,
                config: ExecutionConfig {
                    shots: 200,
                    trajectories: 8,
                    seed: 40 + i as u64,
                    threads: 4,
                },
            })
            .collect();
        let serial: Vec<_> = jobs
            .iter()
            .map(|j| Backend::execute_timed(&m, j.timed, &j.config).unwrap())
            .collect();
        let batched = m.execute_batch(&jobs);
        assert_eq!(batched.len(), serial.len());
        for (b, s) in batched.into_iter().zip(serial) {
            assert_eq!(b.unwrap(), s);
        }
    }

    #[test]
    fn batch_reports_per_job_errors_in_place() {
        use transpiler::{schedule, SchedulePolicy};
        let dev = Device::all_to_all(27, 1);
        let m = Machine::new(dev);
        let mut small = Circuit::new(2);
        small.h(0).cx(0, 1).measure_all();
        let mut huge = Circuit::new(27);
        for q in 0..27 {
            huge.h(q as u32);
        }
        huge.measure_all();
        let ts = schedule(&small, m.device(), SchedulePolicy::Alap);
        let th = schedule(&huge, m.device(), SchedulePolicy::Alap);
        let cfg = ExecutionConfig {
            shots: 64,
            trajectories: 4,
            seed: 1,
            threads: 2,
        };
        let jobs = [
            JobSpec {
                timed: &ts,
                config: cfg,
            },
            JobSpec {
                timed: &th,
                config: cfg,
            },
            JobSpec {
                timed: &ts,
                config: cfg,
            },
        ];
        let results = m.execute_batch(&jobs);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(ExecError::TooManyActiveQubits { .. })
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn empty_batch_is_fine() {
        let m = Machine::new(Device::ibmq_rome(4));
        assert!(m.execute_batch(&[]).is_empty());
    }
}
