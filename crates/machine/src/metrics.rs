//! Pre-resolved handles into the process-wide [`adapt_obs`] registry.
//!
//! Handles are resolved once (first use) so the executor's hot path
//! pays only relaxed atomic adds. Names follow the workspace
//! convention `adapt_machine_<name>`. Metrics are observational only:
//! nothing in the seeded execution path reads them back.

use adapt_obs::{Counter, Gauge, Histogram};
use std::sync::OnceLock;

/// Bucket bounds for batch fan-out (jobs per batch) — counts, not µs.
const FANOUT_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

pub(crate) struct Metrics {
    /// Executions started (`Machine::execute_timed`).
    pub executions: Counter,
    /// Wall time per execution, µs.
    pub execute_us: Histogram,
    pub plan_hits: Counter,
    pub plan_misses: Counter,
    pub plan_evictions: Counter,
    /// Executions routed to the CHP stabilizer engine.
    pub engine_chp: Counter,
    /// Executions routed to the dense state-vector engine.
    pub engine_statevec: Counter,
    /// Batch submissions and total jobs fanned out.
    pub batches: Counter,
    pub batch_jobs: Counter,
    /// Jobs per batch (distribution of fan-out width).
    pub batch_fanout: Histogram,
    /// Thread layout of the most recent batch: concurrent job workers
    /// and trajectory threads granted to each job.
    pub batch_workers: Gauge,
    pub batch_job_threads: Gauge,
    /// Resilient-executor accounting.
    pub retry_requests: Counter,
    pub retry_attempts: Counter,
    pub retry_job_failed: Counter,
    pub retry_timeout: Counter,
    pub retry_exhausted: Counter,
    pub retry_backoff_us: Counter,
    /// Requests abandoned mid-retry-loop for deadline/cancellation.
    pub deadline_aborts: Counter,
    pub dropout_discards: Counter,
    pub partial_batches: Counter,
    pub stale_batches: Counter,
}

pub(crate) fn metrics() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = adapt_obs::global();
        Metrics {
            executions: r.counter("adapt_machine_executions_total"),
            execute_us: r.histogram("adapt_machine_execute_us"),
            plan_hits: r.counter("adapt_machine_plan_cache_hits_total"),
            plan_misses: r.counter("adapt_machine_plan_cache_misses_total"),
            plan_evictions: r.counter("adapt_machine_plan_cache_evictions_total"),
            engine_chp: r.counter("adapt_machine_engine_chp_total"),
            engine_statevec: r.counter("adapt_machine_engine_statevec_total"),
            batches: r.counter("adapt_machine_batches_total"),
            batch_jobs: r.counter("adapt_machine_batch_jobs_total"),
            batch_fanout: r.histogram_with_buckets("adapt_machine_batch_fanout", FANOUT_BUCKETS),
            batch_workers: r.gauge("adapt_machine_batch_workers"),
            batch_job_threads: r.gauge("adapt_machine_batch_job_threads"),
            retry_requests: r.counter("adapt_machine_retry_requests_total"),
            retry_attempts: r.counter("adapt_machine_retry_attempts_total"),
            retry_job_failed: r.counter("adapt_machine_retry_errors_job_failed_total"),
            retry_timeout: r.counter("adapt_machine_retry_errors_timeout_total"),
            retry_exhausted: r.counter("adapt_machine_retry_exhausted_total"),
            retry_backoff_us: r.counter("adapt_machine_retry_backoff_us_total"),
            deadline_aborts: r.counter("adapt_machine_deadline_aborts_total"),
            dropout_discards: r.counter("adapt_machine_dropout_discards_total"),
            partial_batches: r.counter("adapt_machine_partial_batches_total"),
            stale_batches: r.counter("adapt_machine_stale_batches_total"),
        }
    })
}

impl Metrics {
    /// The per-kind retry counter for a transient error
    /// (see `ExecError::kind`).
    pub fn retry_error(&self, kind: &str) -> &Counter {
        match kind {
            "timeout" => &self.retry_timeout,
            _ => &self.retry_job_failed,
        }
    }
}
