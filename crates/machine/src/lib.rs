//! # machine — noisy quantum-machine emulation
//!
//! Binds a [`device::Device`] noise model to the simulators and executes
//! timed circuits by Monte-Carlo trajectories. This crate plays the role
//! the IBMQ backends play in the ADAPT paper: the thing programs (and
//! decoy circuits, and DD sequences) actually run on.
//!
//! Execution routes through a simulator-routing layer ([`engine`]):
//! Clifford circuits under Pauli-expressible noise take the CHP
//! stabilizer fast path, everything else runs on the SoA dense
//! state-vector path. See [`noise`] for the idling-noise model —
//! coherent quasi-static + OU detuning with spectator crosstalk, a
//! Pauli-twirled T1/T2 floor, depolarizing gate errors and readout flips
//! — and [`executor`] for the trajectory executor.
//!
//! # Examples
//!
//! ```
//! use device::Device;
//! use machine::{ExecutionConfig, Machine};
//! use qcirc::Circuit;
//!
//! let machine = Machine::new(Device::ibmq_guadalupe(42));
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1).measure_all();
//! let counts = machine
//!     .execute(&c, &ExecutionConfig { shots: 256, trajectories: 8, seed: 0, threads: 1 })
//!     .unwrap();
//! assert_eq!(counts.total(), 256);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod backend;
pub mod deadline;
pub mod engine;
pub mod executor;
pub mod fault;
mod metrics;
pub mod noise;
pub mod plan;
pub mod resilient;

pub use backend::{Anomaly, Backend, JobSpec, ShotBatch};
pub use deadline::{CancelToken, Deadline, WireDeadline, WIRE_DEADLINE_BYTES};
pub use engine::{EnginePolicy, EngineStats, SimEngine};
pub use executor::{ExecError, ExecutionConfig, Machine, NoiseToggles};
pub use fault::{FaultCounts, FaultPlan, FaultProfile, FaultyBackend, JobFaults};
pub use plan::{routing_key, structural_hash, CompiledPlan, PlanCache, PlanCacheStats};
pub use resilient::{FaultStats, ResilientExecutor, RetryPolicy, RetryPolicyError};
