//! Noise processes driving the trajectory executor.
//!
//! The central modeling decision (see DESIGN.md): idling errors are a
//! **coherent, slowly-fluctuating Z rotation**, not a stochastic Pauli
//! channel. Dynamical decoupling is an echo technique — it can only cancel
//! noise that stays correlated between pulses — so representing the
//! dephasing as an explicit detuning process lets the simulated DD pulses
//! produce (im)perfect echo cancellation for exactly the physical reasons
//! the paper discusses: XY4's dense pulses refocus the process up to its
//! correlation time, while the sparse IBMQ-DD sequence leaves long
//! unprotected gaps (§6.4), and every inserted pulse pays gate error.

use device::QubitCalibration;
use rand::Rng;

/// Gaussian sample via Box–Muller (avoids a rand_distr dependency).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Pauli-twirl probability of a coherent `RZ(theta)`: the twirled
/// channel applies `Z` with probability `sin²(θ/2)` and identity
/// otherwise. This is exactly the diagonal of the channel in the Pauli
/// basis, so the twirl preserves Z-basis populations and (in
/// expectation) the off-diagonal damping `cos θ` of the original
/// rotation. Used by the CHP engine when flushing pending idle phases
/// (see [`crate::engine`]).
pub fn z_twirl_probability(theta: f64) -> f64 {
    let s = (theta / 2.0).sin();
    s * s
}

/// Per-trajectory detuning of one qubit: a quasi-static offset plus an
/// Ornstein–Uhlenbeck fluctuation, in rad/µs.
///
/// # Examples
///
/// ```
/// use device::{Device, SeedSpawner};
/// use machine::noise::QubitDetuning;
///
/// let dev = Device::ibmq_guadalupe(1);
/// let mut rng = SeedSpawner::new(7).rng();
/// let mut d = QubitDetuning::sample(dev.qubit(0), &mut rng);
/// // Integrating the detuning over 1µs yields a phase in radians.
/// let phase = d.advance(1000.0, &mut rng);
/// assert!(phase.abs() < 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct QubitDetuning {
    /// Static offset for this trajectory (rad/µs).
    pub static_offset: f64,
    /// Current OU value (rad/µs).
    ou_value: f64,
    /// OU stationary standard deviation (rad/µs).
    ou_sigma: f64,
    /// OU correlation time (ns).
    ou_tau_ns: f64,
    /// Integration sub-step (ns).
    step_ns: f64,
}

impl QubitDetuning {
    /// Draws a fresh trajectory realization from qubit calibration.
    pub fn sample<R: Rng + ?Sized>(cal: &QubitCalibration, rng: &mut R) -> Self {
        QubitDetuning {
            static_offset: cal.static_sigma * standard_normal(rng),
            ou_value: cal.ou_sigma * standard_normal(rng),
            ou_sigma: cal.ou_sigma,
            ou_tau_ns: cal.ou_tau_ns,
            step_ns: 40.0,
        }
    }

    /// Advances the process by `dt_ns` and returns the accumulated phase
    /// (radians) contributed by the static offset and the OU fluctuation
    /// over that interval. Crosstalk contributions are added by the caller
    /// (they depend on which links are active when).
    pub fn advance<R: Rng + ?Sized>(&mut self, dt_ns: f64, rng: &mut R) -> f64 {
        if dt_ns <= 0.0 {
            return 0.0;
        }
        let mut phase = self.static_offset * dt_ns / 1000.0;
        let mut remaining = dt_ns;
        while remaining > 0.0 {
            let step = remaining.min(self.step_ns);
            // Trapezoidal phase contribution of the OU value over the step.
            let before = self.ou_value;
            let decay = (-step / self.ou_tau_ns).exp();
            let diffusion = self.ou_sigma * (1.0 - decay * decay).sqrt();
            self.ou_value = before * decay + diffusion * standard_normal(rng);
            phase += 0.5 * (before + self.ou_value) * step / 1000.0;
            remaining -= step;
        }
        phase
    }

    /// Current OU value (rad/µs) — exposed for tests and diagnostics.
    pub fn ou_value(&self) -> f64 {
        self.ou_value
    }
}

/// Stochastic (non-echoable) idling floor: amplitude damping and white
/// dephasing, Pauli-twirled. Returns flip probabilities for an idle
/// interval of `dt_ns`.
///
/// The probabilities follow the standard Pauli-twirl of the thermal
/// relaxation channel: `p_x = p_y = (1 − e^{−t/T1})/4` and
/// `p_z = (1 − e^{−t/Tφ})/2 · w` where `1/Tφ = 1/T2 − 1/(2·T1)` and `w`
/// is the white-noise fraction of pure dephasing not already captured by
/// the coherent detuning process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PauliFloor {
    /// X-flip probability.
    pub px: f64,
    /// Y-flip probability.
    pub py: f64,
    /// Z-flip probability.
    pub pz: f64,
}

/// Fraction of pure dephasing treated as uncorrelated white noise (the
/// rest lives in the coherent detuning process above).
pub const WHITE_DEPHASING_FRACTION: f64 = 0.25;

impl PauliFloor {
    /// Computes the floor for an idle interval.
    pub fn for_idle(cal: &QubitCalibration, dt_ns: f64) -> Self {
        let dt_us = dt_ns / 1000.0;
        let p_relax = 1.0 - (-dt_us / cal.t1_us).exp();
        let inv_tphi = (1.0 / cal.t2_us - 0.5 / cal.t1_us).max(0.0);
        let p_deph = 1.0 - (-dt_us * inv_tphi * WHITE_DEPHASING_FRACTION).exp();
        PauliFloor {
            px: p_relax / 4.0,
            py: p_relax / 4.0,
            pz: p_deph / 2.0,
        }
    }

    /// Samples which Pauli (if any) to apply: 0 = none, 1 = X, 2 = Y,
    /// 3 = Z.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        let r: f64 = rng.gen();
        if r < self.px {
            1
        } else if r < self.px + self.py {
            2
        } else if r < self.px + self.py + self.pz {
            3
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use device::{Device, SeedSpawner};

    fn cal() -> QubitCalibration {
        *Device::ibmq_toronto(3).qubit(5)
    }

    #[test]
    fn normal_moments() {
        let mut rng = SeedSpawner::new(1).rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn detuning_static_offset_varies_per_trajectory() {
        let c = cal();
        let mut rng = SeedSpawner::new(2).rng();
        let a = QubitDetuning::sample(&c, &mut rng).static_offset;
        let b = QubitDetuning::sample(&c, &mut rng).static_offset;
        assert_ne!(a, b);
    }

    #[test]
    fn phase_scales_linearly_with_static_offset() {
        let c = cal();
        let mut rng = SeedSpawner::new(3).rng();
        let mut d = QubitDetuning::sample(&c, &mut rng);
        d.static_offset = 2.0; // rad/µs
                               // Suppress the OU part to isolate the static contribution.
        d.ou_value = 0.0;
        d.ou_sigma = 0.0;
        let phase = d.advance(500.0, &mut rng); // 0.5 µs
        assert!((phase - 1.0).abs() < 1e-9, "phase {phase}");
    }

    #[test]
    fn ou_process_is_mean_reverting_with_right_variance() {
        let c = cal();
        let mut rng = SeedSpawner::new(4).rng();
        let mut d = QubitDetuning::sample(&c, &mut rng);
        d.static_offset = 0.0;
        let mut values = Vec::new();
        for _ in 0..20_000 {
            d.advance(100.0, &mut rng);
            values.push(d.ou_value());
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / values.len() as f64;
        let expected = c.ou_sigma * c.ou_sigma;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!(
            (var - expected).abs() / expected < 0.15,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn ou_correlation_decays_with_lag() {
        let c = cal();
        let mut rng = SeedSpawner::new(5).rng();
        let mut d = QubitDetuning::sample(&c, &mut rng);
        d.static_offset = 0.0;
        let mut vals = Vec::new();
        for _ in 0..40_000 {
            d.advance(50.0, &mut rng);
            vals.push(d.ou_value());
        }
        let corr = |lag: usize| -> f64 {
            let n = vals.len() - lag;
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            let cov: f64 = (0..n)
                .map(|i| (vals[i] - m) * (vals[i + lag] - m))
                .sum::<f64>()
                / n as f64;
            let var: f64 = vals.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / vals.len() as f64;
            cov / var
        };
        let short = corr(2); // lag 100ns ≪ τ
        let long = corr((c.ou_tau_ns as usize / 50) * 4); // lag 4τ
        assert!(short > 0.8, "short-lag correlation {short}");
        assert!(long < 0.3, "long-lag correlation {long}");
    }

    #[test]
    fn zero_interval_accumulates_nothing() {
        let c = cal();
        let mut rng = SeedSpawner::new(6).rng();
        let mut d = QubitDetuning::sample(&c, &mut rng);
        assert_eq!(d.advance(0.0, &mut rng), 0.0);
        assert_eq!(d.advance(-5.0, &mut rng), 0.0);
    }

    #[test]
    fn pauli_floor_grows_with_time_and_saturates() {
        let c = cal();
        let short = PauliFloor::for_idle(&c, 100.0);
        let long = PauliFloor::for_idle(&c, 100_000.0);
        assert!(short.px < long.px);
        assert!(long.px <= 0.25 + 1e-12);
        assert!(long.pz <= 0.5 + 1e-12);
        assert!(short.px > 0.0);
    }

    #[test]
    fn pauli_floor_sampling_respects_probabilities() {
        let floor = PauliFloor {
            px: 0.1,
            py: 0.1,
            pz: 0.2,
        };
        let mut rng = SeedSpawner::new(7).rng();
        let mut histo = [0u32; 4];
        let n = 50_000;
        for _ in 0..n {
            histo[floor.sample(&mut rng) as usize] += 1;
        }
        assert!((histo[0] as f64 / n as f64 - 0.6).abs() < 0.02);
        assert!((histo[1] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((histo[3] as f64 / n as f64 - 0.2).abs() < 0.015);
    }
}
