//! Retry/backoff execution over any [`Backend`].
//!
//! [`ResilientExecutor`] wraps a backend and turns its transient failures
//! into a bounded retry loop with exponential backoff and jitter, while
//! *accumulating* partial results: a truncated batch is kept and the next
//! attempt only asks for the missing shots, so two 60% deliveries add up
//! to one complete histogram instead of two discarded ones. Batches with
//! a readout-register dropout are the exception — a zeroed bit corrupts
//! the distribution rather than widening its error bars, so they are
//! discarded and retried.
//!
//! Determinism contract: the backoff schedule (including jitter) is a
//! pure function of `(RetryPolicy, ExecutionConfig::seed, attempt)`, and
//! attempt 0 runs under the caller's exact seed — a fault-free backend
//! behind a `ResilientExecutor` is bit-identical to the bare backend.
//! Backoff delays are *virtual* by default (computed and recorded, not
//! slept): against a simulator, wall-clock waiting buys nothing, and
//! tests must not take minutes. Set [`RetryPolicy::sleep`] for real
//! deployments.

use crate::backend::{Backend, ShotBatch};
use crate::deadline::Deadline;
use crate::executor::{ExecError, ExecutionConfig};
use device::{Device, SeedSpawner};
use qcirc::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex, MutexGuard};
use transpiler::TimedCircuit;

/// Salt folded into the execution seed so backoff jitter draws never
/// collide with trajectory/shot randomness derived from the same seed.
const BACKOFF_SALT: u64 = 0x42AC_0FF5_7E7A_11CE;

/// Retry behaviour of a [`ResilientExecutor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum backend attempts per request (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in milliseconds.
    pub base_backoff_ms: f64,
    /// Multiplier applied to the backoff after every failed attempt.
    pub backoff_factor: f64,
    /// Ceiling on the (pre-jitter) backoff, in milliseconds.
    pub max_backoff_ms: f64,
    /// Symmetric jitter as a fraction of the nominal delay: the actual
    /// delay is `nominal * (1 ± jitter_frac)`, drawn deterministically.
    pub jitter_frac: f64,
    /// Minimum delivered fraction at which an exhausted request is still
    /// accepted as a (flagged) partial result instead of an error.
    pub min_shot_fraction: f64,
    /// Actually sleep the backoff delays. Off by default: simulated
    /// backends fail instantly and the schedule is fully recorded in
    /// [`FaultStats`] either way.
    pub sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 10.0,
            backoff_factor: 2.0,
            max_backoff_ms: 1_000.0,
            jitter_frac: 0.25,
            min_shot_fraction: 0.5,
            sleep: false,
        }
    }
}

/// A [`RetryPolicy`] field combination that cannot express a sane retry
/// schedule. Produced by [`RetryPolicy::validate`]; before PR 5 such
/// configs were accepted silently and produced nonsense (zero attempts
/// never execute anything, NaN backoff poisons every delay).
#[derive(Debug, Clone, PartialEq)]
pub enum RetryPolicyError {
    /// `max_attempts == 0`: the executor would never dispatch anything.
    ZeroAttempts,
    /// A numeric field is NaN, infinite, or outside its valid range.
    InvalidField {
        /// The offending `RetryPolicy` field name.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint the value violates.
        constraint: &'static str,
    },
}

impl std::fmt::Display for RetryPolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryPolicyError::ZeroAttempts => {
                write!(f, "max_attempts must be at least 1 (got 0)")
            }
            RetryPolicyError::InvalidField {
                field,
                value,
                constraint,
            } => write!(f, "{field} = {value} is invalid: must be {constraint}"),
        }
    }
}

impl std::error::Error for RetryPolicyError {}

impl RetryPolicy {
    /// A policy that never retries (attempt 0 only, no partial top-up).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// Checks the policy for field combinations that silently produce
    /// nonsense: zero attempts, negative/NaN/infinite backoff fields,
    /// fractions outside `[0, 1]`. Returns the first violation found.
    ///
    /// # Errors
    ///
    /// Returns a typed [`RetryPolicyError`] naming the offending field.
    pub fn validate(&self) -> Result<(), RetryPolicyError> {
        if self.max_attempts == 0 {
            return Err(RetryPolicyError::ZeroAttempts);
        }
        let finite_nonneg: [(&'static str, f64); 3] = [
            ("base_backoff_ms", self.base_backoff_ms),
            ("backoff_factor", self.backoff_factor),
            ("max_backoff_ms", self.max_backoff_ms),
        ];
        for (field, value) in finite_nonneg {
            if !value.is_finite() || value < 0.0 {
                return Err(RetryPolicyError::InvalidField {
                    field,
                    value,
                    constraint: "finite and non-negative",
                });
            }
        }
        let unit_fracs: [(&'static str, f64); 2] = [
            ("jitter_frac", self.jitter_frac),
            ("min_shot_fraction", self.min_shot_fraction),
        ];
        for (field, value) in unit_fracs {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(RetryPolicyError::InvalidField {
                    field,
                    value,
                    constraint: "within [0, 1]",
                });
            }
        }
        Ok(())
    }

    /// The backoff delay (ms) charged after failed attempt `attempt`
    /// (0-based), for a request executing under `seed`. Pure function —
    /// the whole schedule can be predicted (and asserted) in advance.
    pub fn delay_ms(&self, seed: u64, attempt: u32) -> f64 {
        let nominal = (self.base_backoff_ms * self.backoff_factor.powi(attempt as i32))
            .min(self.max_backoff_ms);
        let spawner = SeedSpawner::new(seed ^ BACKOFF_SALT);
        let mut rng = StdRng::seed_from_u64(spawner.derive(attempt as u64));
        let u: f64 = rng.gen();
        (nominal * (1.0 + self.jitter_frac * (2.0 * u - 1.0))).max(0.0)
    }

    /// The full backoff schedule for `attempts` failed attempts under
    /// `seed`.
    pub fn backoff_schedule(&self, seed: u64, attempts: u32) -> Vec<f64> {
        (0..attempts).map(|a| self.delay_ms(seed, a)).collect()
    }
}

/// Counters describing everything a [`ResilientExecutor`] absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultStats {
    /// Requests (execute calls) received.
    pub requests: u64,
    /// Backend attempts dispatched (≥ requests).
    pub attempts: u64,
    /// Transient errors retried around.
    pub transient_errors: u64,
    /// Batches discarded because a readout bit dropped.
    pub dropout_discards: u64,
    /// Truncated batches absorbed into partial accumulation.
    pub partial_batches: u64,
    /// Requests resolved with fewer shots than asked (flagged partial).
    pub partial_accepted: u64,
    /// Requests that exhausted the retry budget and returned an error.
    pub exhausted: u64,
    /// Requests whose batch ran under stale calibration.
    pub stale_batches: u64,
    /// Requests abandoned because their deadline expired or they were
    /// cancelled mid-retry-loop.
    pub deadline_aborts: u64,
    /// Total (virtual or real) backoff charged, in milliseconds.
    pub total_backoff_ms: f64,
}

impl std::fmt::Display for FaultStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests / {} attempts: {} transient errors retried, \
             {} dropout discards, {} partial batches absorbed, \
             {} accepted partial, {} exhausted, {} stale, \
             {} deadline aborts, {:.1} ms backoff",
            self.requests,
            self.attempts,
            self.transient_errors,
            self.dropout_discards,
            self.partial_batches,
            self.partial_accepted,
            self.exhausted,
            self.stale_batches,
            self.deadline_aborts,
            self.total_backoff_ms
        )
    }
}

/// A [`Backend`] decorator adding retry, backoff and partial-result
/// accumulation.
///
/// # Examples
///
/// ```
/// use device::Device;
/// use machine::{
///     Backend, ExecutionConfig, FaultProfile, FaultyBackend, Machine, ResilientExecutor,
///     RetryPolicy,
/// };
/// use qcirc::Circuit;
/// use std::sync::Arc;
///
/// let flaky = FaultyBackend::new(Machine::new(Device::ibmq_rome(3)), FaultProfile::flaky(), 7);
/// let exec = ResilientExecutor::new(Arc::new(flaky));
/// let mut c = Circuit::new(1);
/// c.h(0).measure(0, 0);
/// let cfg = ExecutionConfig { shots: 128, trajectories: 4, seed: 1, threads: 1 };
/// // 10% failures + 5% timeouts: 4 attempts make every request succeed here.
/// for _ in 0..20 {
///     assert!(exec.execute(&c, &cfg).is_ok());
/// }
/// assert!(exec.stats().attempts >= 20);
/// ```
pub struct ResilientExecutor {
    backend: Arc<dyn Backend>,
    policy: RetryPolicy,
    /// The request deadline every execute call is checked against.
    /// Defaults to [`Deadline::none`]; bind a real one per request with
    /// [`ResilientExecutor::with_deadline`].
    deadline: Deadline,
    stats: Mutex<FaultStats>,
}

impl std::fmt::Debug for ResilientExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientExecutor")
            .field("policy", &self.policy)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl ResilientExecutor {
    /// Wraps a backend with the default [`RetryPolicy`].
    pub fn new(backend: Arc<dyn Backend>) -> Self {
        Self::with_policy(backend, RetryPolicy::default())
    }

    /// Wraps a backend with an explicit policy.
    ///
    /// # Panics
    ///
    /// Panics when the policy fails [`RetryPolicy::validate`] — a config
    /// bug at construction time. Use
    /// [`ResilientExecutor::try_with_policy`] to handle it as a value.
    pub fn with_policy(backend: Arc<dyn Backend>, policy: RetryPolicy) -> Self {
        match Self::try_with_policy(backend, policy) {
            Ok(exec) => exec,
            Err(e) => panic!("invalid RetryPolicy: {e}"),
        }
    }

    /// Wraps a backend with an explicit policy, rejecting invalid ones.
    ///
    /// # Errors
    ///
    /// Returns the [`RetryPolicyError`] from [`RetryPolicy::validate`].
    pub fn try_with_policy(
        backend: Arc<dyn Backend>,
        policy: RetryPolicy,
    ) -> Result<Self, RetryPolicyError> {
        policy.validate()?;
        Ok(ResilientExecutor {
            backend,
            policy,
            deadline: Deadline::none(),
            stats: Mutex::new(FaultStats::default()),
        })
    }

    /// Binds a request deadline: every attempt checks it first, and
    /// backoff never sleeps (or charges) past the remaining budget.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// The bound deadline ([`Deadline::none`] unless set).
    pub fn deadline(&self) -> &Deadline {
        &self.deadline
    }

    /// The active retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Locks the stats counters, recovering from a poisoned mutex.
    ///
    /// Poisoning can happen for real: the service worker pool wraps
    /// request handling in `catch_unwind`, so a panic raised while an
    /// increment holds this lock (e.g. under `FaultyBackend`) used to
    /// poison it and turn *every* later request into a panic cascade.
    /// The stats are plain counters with no invariants spanning a panic
    /// point, so the stored value is always valid — take it.
    fn stats_lock(&self) -> MutexGuard<'_, FaultStats> {
        self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Snapshot of the absorbed-fault counters.
    pub fn stats(&self) -> FaultStats {
        *self.stats_lock()
    }

    /// Resets the counters (e.g. between experiment phases).
    pub fn reset_stats(&self) {
        *self.stats_lock() = FaultStats::default();
    }

    /// The retry loop shared by both execute paths. `dispatch` runs one
    /// attempt under an attempt-specific config.
    fn run_resilient(
        &self,
        config: &ExecutionConfig,
        dispatch: &dyn Fn(&ExecutionConfig) -> Result<ShotBatch, ExecError>,
    ) -> Result<ShotBatch, ExecError> {
        let mtr = crate::metrics::metrics();
        self.stats_lock().requests += 1;
        mtr.retry_requests.inc();
        let topup_seeds = SeedSpawner::new(config.seed ^ BACKOFF_SALT);
        let mut merged: Option<ShotBatch> = None;
        let mut last_err: Option<ExecError> = None;
        let mut interruption: Option<ExecError> = None;
        let mut attempts = 0u32;

        for attempt in 0..self.policy.max_attempts.max(1) {
            // Cooperative cancellation point: no attempt starts once the
            // request's deadline is gone or its token is raised.
            if let Err(e) = self.deadline.check() {
                interruption = Some(e);
                break;
            }
            let have = merged.as_ref().map_or(0, ShotBatch::delivered_shots);
            let need = config.shots.saturating_sub(have);
            if need == 0 {
                break;
            }
            // Attempt 0 runs under the caller's exact seed so a clean
            // backend is bit-identical to the bare path; top-up attempts
            // draw fresh sub-seeds for independent shots.
            let attempt_cfg = ExecutionConfig {
                shots: need,
                seed: if attempt == 0 {
                    config.seed
                } else {
                    topup_seeds.derive(0x7070 + attempt as u64)
                },
                ..*config
            };
            attempts += 1;
            self.stats_lock().attempts += 1;
            mtr.retry_attempts.inc();

            match dispatch(&attempt_cfg) {
                Ok(batch) if batch.has_dropout() => {
                    // A zeroed register bit corrupts the distribution;
                    // discard the batch and treat the attempt as failed.
                    drop(batch);
                    self.stats_lock().dropout_discards += 1;
                    mtr.dropout_discards.inc();
                    last_err = Some(ExecError::JobFailed {
                        job: attempt as u64,
                        reason: "readout register dropout (batch discarded)".to_string(),
                    });
                    self.charge_backoff(config.seed, attempt);
                }
                Ok(batch) => {
                    {
                        let mut s = self.stats_lock();
                        if !batch.is_complete() {
                            s.partial_batches += 1;
                            mtr.partial_batches.inc();
                        }
                        if batch
                            .anomalies
                            .iter()
                            .any(|a| matches!(a, crate::backend::Anomaly::StaleCalibration { .. }))
                        {
                            s.stale_batches += 1;
                            mtr.stale_batches.inc();
                        }
                    }
                    match merged.as_mut() {
                        Some(m) => m.absorb(batch),
                        None => merged = Some(batch),
                    }
                    let m = merged.as_ref().expect("just set");
                    if m.delivered_shots() >= config.shots {
                        break;
                    }
                    // Partial delivery: top up on the next attempt.
                    self.charge_backoff(config.seed, attempt);
                }
                // An inner layer noticed the deadline/cancellation mid
                // attempt: stop the loop, keep whatever already merged.
                Err(e) if e.is_interruption() => {
                    interruption = Some(e);
                    break;
                }
                Err(e) if e.is_transient() => {
                    self.stats_lock().transient_errors += 1;
                    mtr.retry_error(e.kind()).inc();
                    last_err = Some(e);
                    self.charge_backoff(config.seed, attempt);
                }
                Err(e) => return Err(e),
            }
        }

        // Normalize the accumulated result against the original request.
        if let Some(mut m) = merged {
            m.requested_shots = config.shots;
            if m.delivered_shots() >= config.shots {
                return Ok(m);
            }
            if m.delivered_fraction() >= self.policy.min_shot_fraction {
                self.stats_lock().partial_accepted += 1;
                return Ok(m);
            }
        }
        // An interrupted request reports the interruption, not an
        // exhausted retry budget: the budget wasn't exhausted, the caller
        // stopped waiting.
        if let Some(e) = interruption {
            self.stats_lock().deadline_aborts += 1;
            mtr.deadline_aborts.inc();
            return Err(e);
        }
        self.stats_lock().exhausted += 1;
        mtr.retry_exhausted.inc();
        Err(ExecError::RetriesExhausted {
            attempts,
            last: Box::new(last_err.unwrap_or(ExecError::JobFailed {
                job: 0,
                reason: "no shots delivered".to_string(),
            })),
        })
    }

    /// Records (and optionally sleeps) the backoff after a failed
    /// attempt, except after the final one where no retry follows. The
    /// delay is clamped to the deadline's remaining budget — backoff
    /// never sleeps past the deadline — and charged to the deadline as
    /// virtual time, so under [`Deadline::virtual_only`] the expiry
    /// point is a pure function of the seeded schedule.
    fn charge_backoff(&self, seed: u64, attempt: u32) {
        if attempt + 1 >= self.policy.max_attempts {
            return;
        }
        let mut delay = self.policy.delay_ms(seed, attempt);
        if let Some(remaining) = self.deadline.remaining_ms_f64() {
            delay = delay.min(remaining);
        }
        // Quantize once to whole µs so the deadline charge, the stats
        // and the slept duration are the same number — clamped delays
        // can then never sum past the budget.
        let delay_us = (delay * 1000.0) as u64;
        self.deadline.charge_us(delay_us);
        self.stats_lock().total_backoff_ms += delay_us as f64 / 1000.0;
        crate::metrics::metrics().retry_backoff_us.add(delay_us);
        if self.policy.sleep {
            std::thread::sleep(std::time::Duration::from_micros(delay_us));
        }
    }
}

impl Backend for ResilientExecutor {
    fn execute(&self, circuit: &Circuit, config: &ExecutionConfig) -> Result<ShotBatch, ExecError> {
        let backend = Arc::clone(&self.backend);
        self.run_resilient(config, &move |cfg: &ExecutionConfig| {
            backend.execute(circuit, cfg)
        })
    }

    fn execute_timed(
        &self,
        timed: &TimedCircuit,
        config: &ExecutionConfig,
    ) -> Result<ShotBatch, ExecError> {
        let backend = Arc::clone(&self.backend);
        self.run_resilient(config, &move |cfg: &ExecutionConfig| {
            backend.execute_timed(timed, cfg)
        })
    }

    fn device_snapshot(&self) -> Device {
        self.backend.device_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Machine;
    use crate::fault::{FaultProfile, FaultyBackend};
    use qcirc::Counts;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        c
    }

    fn cfg(seed: u64) -> ExecutionConfig {
        ExecutionConfig {
            shots: 240,
            trajectories: 8,
            seed,
            threads: 1,
        }
    }

    /// A backend that fails transiently a fixed number of times, then
    /// succeeds.
    struct FailNTimes {
        inner: Machine,
        remaining: Mutex<u32>,
    }

    impl Backend for FailNTimes {
        fn execute(
            &self,
            circuit: &Circuit,
            config: &ExecutionConfig,
        ) -> Result<ShotBatch, ExecError> {
            let mut left = self.remaining.lock().unwrap();
            if *left > 0 {
                *left -= 1;
                return Err(ExecError::JobFailed {
                    job: 0,
                    reason: "scripted failure".to_string(),
                });
            }
            Backend::execute(&self.inner, circuit, config)
        }

        fn execute_timed(
            &self,
            timed: &TimedCircuit,
            config: &ExecutionConfig,
        ) -> Result<ShotBatch, ExecError> {
            let mut left = self.remaining.lock().unwrap();
            if *left > 0 {
                *left -= 1;
                return Err(ExecError::Timeout {
                    job: 0,
                    budget_ms: 1,
                });
            }
            Backend::execute_timed(&self.inner, timed, config)
        }

        fn device_snapshot(&self) -> Device {
            self.inner.device().clone()
        }
    }

    #[test]
    fn clean_backend_is_bit_identical_through_the_executor() {
        let m = Machine::new(Device::ibmq_rome(3));
        let direct = m.execute(&bell(), &cfg(5)).unwrap();
        let exec = ResilientExecutor::new(Arc::new(Machine::new(Device::ibmq_rome(3))));
        let batch = exec.execute(&bell(), &cfg(5)).unwrap();
        assert_eq!(batch.counts, direct);
        assert!(batch.is_complete());
        assert_eq!(exec.stats().attempts, 1);
    }

    #[test]
    fn retries_recover_from_transient_failures() {
        let backend = FailNTimes {
            inner: Machine::new(Device::ibmq_rome(3)),
            remaining: Mutex::new(2),
        };
        let exec = ResilientExecutor::new(Arc::new(backend));
        let batch = exec.execute(&bell(), &cfg(5)).unwrap();
        assert_eq!(batch.delivered_shots(), 240);
        let s = exec.stats();
        assert_eq!(s.attempts, 3);
        assert_eq!(s.transient_errors, 2);
        assert!(s.total_backoff_ms > 0.0);
    }

    #[test]
    fn budget_exhaustion_returns_typed_error() {
        let backend = FailNTimes {
            inner: Machine::new(Device::ibmq_rome(3)),
            remaining: Mutex::new(100),
        };
        let exec = ResilientExecutor::new(Arc::new(backend));
        let err = exec.execute(&bell(), &cfg(5)).unwrap_err();
        let ExecError::RetriesExhausted { attempts, last } = err else {
            panic!("expected RetriesExhausted");
        };
        assert_eq!(attempts, 4);
        assert!(last.is_transient());
        // The exhausted error itself is not transient: nesting retry
        // loops must not multiply budgets.
        assert!(!ExecError::RetriesExhausted { attempts, last }.is_transient());
        assert_eq!(exec.stats().exhausted, 1);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let m = Machine::new(Device::all_to_all(27, 1));
        let exec = ResilientExecutor::new(Arc::new(m));
        let mut c = Circuit::new(27);
        for q in 0..27 {
            c.h(q as u32);
        }
        c.measure_all();
        let err = exec.execute(&c, &cfg(1)).unwrap_err();
        assert!(matches!(err, ExecError::TooManyActiveQubits { .. }));
        assert_eq!(exec.stats().attempts, 1);
    }

    #[test]
    fn truncated_batches_accumulate_to_full_delivery() {
        let profile = FaultProfile {
            shot_truncation: 1.0,
            truncation_floor: 0.5,
            ..FaultProfile::none()
        };
        let backend = FaultyBackend::new(Machine::new(Device::ibmq_rome(3)), profile, 3);
        let exec = ResilientExecutor::new(Arc::new(backend));
        let batch = exec.execute(&bell(), &cfg(9)).unwrap();
        // Every attempt truncates, but top-ups close the gap (4 attempts
        // at ≥50% each always cover 100%).
        assert_eq!(batch.delivered_shots(), 240);
        assert_eq!(batch.requested_shots, 240);
        let s = exec.stats();
        assert!(s.partial_batches >= 1);
        assert!(s.attempts >= 2);
    }

    #[test]
    fn partial_acceptance_below_full_but_above_floor() {
        // One attempt only, always truncated to ~50-100%: accepted as
        // partial under the default 0.5 floor.
        let profile = FaultProfile {
            shot_truncation: 1.0,
            truncation_floor: 0.5,
            ..FaultProfile::none()
        };
        let backend = FaultyBackend::new(Machine::new(Device::ibmq_rome(3)), profile, 3);
        let exec = ResilientExecutor::with_policy(Arc::new(backend), RetryPolicy::no_retries());
        let batch = exec.execute(&bell(), &cfg(9)).unwrap();
        assert!(batch.delivered_shots() < 240);
        assert!(batch.delivered_fraction() >= 0.5 - 1e-9);
        assert_eq!(exec.stats().partial_accepted, 1);
    }

    #[test]
    fn dropout_batches_are_discarded_and_retried() {
        let profile = FaultProfile {
            readout_dropout: 1.0,
            ..FaultProfile::none()
        };
        let backend = FaultyBackend::new(Machine::new(Device::ibmq_rome(3)), profile, 3);
        let exec = ResilientExecutor::new(Arc::new(backend));
        let err = exec.execute(&bell(), &cfg(9)).unwrap_err();
        assert!(matches!(err, ExecError::RetriesExhausted { .. }));
        assert_eq!(exec.stats().dropout_discards, 4);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_seed_sensitive() {
        let policy = RetryPolicy::default();
        let a = policy.backoff_schedule(42, 6);
        let b = policy.backoff_schedule(42, 6);
        assert_eq!(a, b, "same seed must give the same schedule");
        let c = policy.backoff_schedule(43, 6);
        assert_ne!(a, c, "different seeds must jitter differently");
        // Exponential growth up to the cap, jitter within ±25%.
        for (i, d) in a.iter().enumerate() {
            let nominal = (10.0 * 2.0f64.powi(i as i32)).min(1_000.0);
            assert!(*d >= nominal * 0.75 - 1e-9 && *d <= nominal * 1.25 + 1e-9);
        }
        assert!(a[5] > a[0], "later delays must be longer");
    }

    #[test]
    fn poisoned_stats_lock_recovers_instead_of_cascading() {
        // Regression: a panic while holding the stats mutex (a worker
        // thread dying mid-increment under catch_unwind) poisoned the
        // lock, and every later `stats()`/`execute()` call panicked on
        // `.expect("stats lock")`. Counters have no cross-field
        // invariants, so recovery must take the stored value.
        let exec = Arc::new(ResilientExecutor::new(Arc::new(Machine::new(
            Device::ibmq_rome(3),
        ))));
        exec.execute(&bell(), &cfg(5)).unwrap();

        // Poison the mutex: panic while holding the guard.
        let poisoner = Arc::clone(&exec);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = poisoner.stats.lock().unwrap();
            panic!("worker dies holding the stats lock");
        }));
        assert!(exec.stats.is_poisoned(), "the panic must have poisoned it");

        // The executor keeps serving and keeps counting.
        let before = exec.stats();
        assert_eq!(before.requests, 1);
        exec.execute(&bell(), &cfg(6)).unwrap();
        assert_eq!(exec.stats().requests, 2);
        exec.reset_stats();
        assert_eq!(exec.stats(), FaultStats::default());
    }

    #[test]
    fn executor_runs_are_reproducible_under_fixed_seed() {
        let run = || -> (Counts, FaultStats) {
            let backend = FaultyBackend::new(
                Machine::new(Device::ibmq_rome(3)),
                FaultProfile::lossy(),
                21,
            );
            let exec = ResilientExecutor::new(Arc::new(backend));
            let mut counts = Counts::new(2);
            for i in 0..10 {
                if let Ok(b) = exec.execute(&bell(), &cfg(100 + i)) {
                    counts.merge(&b.counts);
                }
            }
            (counts, exec.stats())
        };
        let (c1, s1) = run();
        let (c2, s2) = run();
        assert_eq!(c1, c2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn invalid_policies_are_rejected_with_typed_errors() {
        let backend = || Arc::new(Machine::new(Device::ibmq_rome(3))) as Arc<dyn Backend>;
        let zero = RetryPolicy {
            max_attempts: 0,
            ..Default::default()
        };
        assert_eq!(zero.validate(), Err(RetryPolicyError::ZeroAttempts));
        assert!(ResilientExecutor::try_with_policy(backend(), zero).is_err());

        let nan = RetryPolicy {
            base_backoff_ms: f64::NAN,
            ..Default::default()
        };
        let err = nan.validate().unwrap_err();
        assert!(matches!(
            err,
            RetryPolicyError::InvalidField {
                field: "base_backoff_ms",
                ..
            }
        ));
        assert!(err.to_string().contains("base_backoff_ms"));

        let negative = RetryPolicy {
            max_backoff_ms: -1.0,
            ..Default::default()
        };
        assert!(negative.validate().is_err());

        let jitter = RetryPolicy {
            jitter_frac: 1.5,
            ..Default::default()
        };
        assert!(matches!(
            jitter.validate(),
            Err(RetryPolicyError::InvalidField {
                field: "jitter_frac",
                ..
            })
        ));
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy::no_retries().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid RetryPolicy")]
    fn with_policy_panics_on_invalid_config() {
        let backend = Arc::new(Machine::new(Device::ibmq_rome(3)));
        let _ = ResilientExecutor::with_policy(
            backend,
            RetryPolicy {
                max_attempts: 0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn expired_deadline_fails_fast_without_dispatching() {
        let exec = ResilientExecutor::new(Arc::new(Machine::new(Device::ibmq_rome(3))))
            .with_deadline(Deadline::virtual_only(0));
        let err = exec.execute(&bell(), &cfg(5)).unwrap_err();
        assert!(matches!(
            err,
            ExecError::DeadlineExceeded { budget_ms: 0, .. }
        ));
        let s = exec.stats();
        assert_eq!(s.attempts, 0, "no backend attempt once expired");
        assert_eq!(s.deadline_aborts, 1);
    }

    #[test]
    fn cancellation_stops_the_retry_loop() {
        let deadline = Deadline::none();
        deadline.token().cancel();
        let exec = ResilientExecutor::new(Arc::new(Machine::new(Device::ibmq_rome(3))))
            .with_deadline(deadline);
        assert_eq!(
            exec.execute(&bell(), &cfg(5)).unwrap_err(),
            ExecError::Cancelled
        );
        assert_eq!(exec.stats().deadline_aborts, 1);
    }

    #[test]
    fn backoff_is_clamped_to_the_remaining_budget() {
        // Always-failing backend, virtual deadline smaller than the full
        // backoff schedule: the loop must stop with DeadlineExceeded, and
        // the charged backoff must never exceed the budget.
        let backend = FailNTimes {
            inner: Machine::new(Device::ibmq_rome(3)),
            remaining: Mutex::new(100),
        };
        let policy = RetryPolicy {
            max_attempts: 16,
            ..Default::default()
        };
        let budget_ms = 25;
        let exec = ResilientExecutor::with_policy(Arc::new(backend), policy)
            .with_deadline(Deadline::virtual_only(budget_ms));
        let err = exec.execute(&bell(), &cfg(5)).unwrap_err();
        assert!(matches!(
            err,
            ExecError::DeadlineExceeded { budget_ms: 25, .. }
        ));
        let s = exec.stats();
        assert!(
            s.total_backoff_ms <= budget_ms as f64 + 1e-9,
            "charged {} ms against a {budget_ms} ms budget",
            s.total_backoff_ms
        );
        assert!(s.attempts >= 1, "work proceeded until the budget ran out");
        assert_eq!(s.deadline_aborts, 1);
    }

    #[test]
    fn virtual_deadline_trips_at_the_same_point_across_runs() {
        // Determinism of the cancellation point: two identical runs must
        // make the same number of attempts before the deadline trips.
        let run = || {
            let backend = FailNTimes {
                inner: Machine::new(Device::ibmq_rome(3)),
                remaining: Mutex::new(100),
            };
            let policy = RetryPolicy {
                max_attempts: 16,
                ..Default::default()
            };
            let exec = ResilientExecutor::with_policy(Arc::new(backend), policy)
                .with_deadline(Deadline::virtual_only(40));
            let _ = exec.execute(&bell(), &cfg(77));
            exec.stats()
        };
        assert_eq!(run(), run());
    }
}
