//! The simulator-routing engine: one trajectory, two substrates.
//!
//! Every execution compiles to a [`CompiledPlan`](crate::plan::CompiledPlan)
//! whose lowered op stream runs on one of two engines:
//!
//! - [`SimEngine::Chp`] — the `stabilizer` crate's Aaronson–Gottesman
//!   tableau. Selected when every gate of the scheduled circuit is
//!   Clifford-lowerable *and* the machine's noise channels are
//!   Pauli-expressible (see [`pauli_expressible`]). Decoy circuits are
//!   classically cheap by construction (PAPER.md §1); this engine makes
//!   the executor exploit that instead of paying dense Monte-Carlo price.
//! - [`SimEngine::StateVector`] — the dense fallback, rebuilt on
//!   [`statevec::SoaStateVector`] with fused/classified kernels from the
//!   plan lowering.
//!
//! # Coherent phases on the stabilizer engine: the toggling-frame twirl
//!
//! The idle-noise model is *coherent* (arbitrary-angle Z rotations from
//! detuning and spectator crosstalk), which a tableau cannot represent
//! directly. Instead of giving up Clifford routing whenever those
//! channels are on, the CHP runner tracks each qubit's accumulated idle
//! phase `θ_q` in software as a *pending* `RZ(θ_q)` and commutes it
//! through the circuit exactly where algebra allows:
//!
//! - diagonal gates (Z, S, S†, CZ, Clifford RZ) commute: keep `θ`;
//! - X and Y (DD pulses!) conjugate `RZ(θ)` to `RZ(−θ)`: negate `θ` —
//!   this is precisely the echo cancellation DD relies on, preserved
//!   *exactly*;
//! - SWAP exchanges pending phases; a CX control keeps its phase;
//! - frame-mixing gates (H, √X, √X†, CX target) force a *flush*: the
//!   pending `RZ(θ)` is Pauli-twirled into a stochastic Z with
//!   probability `sin²(θ/2)` (see [`crate::noise::z_twirl_probability`]),
//!   then `θ := 0`;
//! - measurement/reset clear `θ` exactly (a Z rotation commutes with
//!   Z-basis collapse up to global phase);
//! - stochastic X/Y Pauli events (gate errors, the T1/T2 floor) negate
//!   `θ` like their coherent counterparts.
//!
//! The only approximation is the loss of coherent interference *at flush
//! points*; between flushes the signed phase arithmetic is exact, so DD
//! sequences echo out detuning on this engine for the same reason they
//! do on hardware. With coherent channels disabled the twirl never fires
//! and the engine is exact. Machines can opt out of the approximation via
//! [`NoiseToggles::coherent_twirl`] or pin the dense engine with
//! [`EnginePolicy::ForceStateVector`].
//!
//! # Determinism contract
//!
//! Each engine's results are a pure function of `(plan, seed)`. The two
//! engines agree in distribution but not bit-for-bit, so the plan cache
//! keys routing eligibility into its hash
//! ([`crate::plan::routing_key`]): a given key always takes one engine,
//! and a noise-model edit that flips eligibility changes the key instead
//! of silently reusing a stale plan across engines.

use crate::executor::{ExecError, Machine, NoiseToggles, CROSSTALK_JITTER};
use crate::noise::{standard_normal, z_twirl_probability, QubitDetuning};
use crate::plan::{CliffOp, CompiledPlan, DenseOp, IdleOp, Kernel1, Kernel2};
use qcirc::math::C64;
use qcirc::{Counts, Gate};
use rand::rngs::StdRng;
use rand::Rng;
use stab::Tableau;
use statevec::SoaStateVector;
use std::f64::consts::FRAC_PI_2;
use std::sync::atomic::{AtomicU64, Ordering};
use transpiler::TimedCircuit;

/// Which simulation substrate a compiled plan runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimEngine {
    /// Dense state-vector Monte-Carlo (SoA kernels).
    StateVector,
    /// Aaronson–Gottesman stabilizer tableau with the toggling-frame
    /// phase twirl for coherent idle channels.
    Chp,
}

impl SimEngine {
    /// Stable snake_case tag, used in metrics and benchmark reports.
    pub fn tag(self) -> &'static str {
        match self {
            SimEngine::StateVector => "statevector",
            SimEngine::Chp => "chp",
        }
    }
}

/// Routing policy of a [`Machine`]: how plans pick their engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EnginePolicy {
    /// Route eligible circuits to the CHP engine, fall back to dense.
    #[default]
    Auto,
    /// Always use the dense state-vector engine (validation/debugging,
    /// and the reference side of cross-engine equivalence tests).
    ForceStateVector,
}

/// Whether the machine's enabled noise channels can be expressed as
/// Pauli channels on the stabilizer engine.
///
/// Gate errors, readout flips and the T1/T2 floor are Pauli channels
/// already. The coherent idle channels (detuning, crosstalk) are not,
/// but the toggling-frame twirl makes them admissible when
/// [`NoiseToggles::coherent_twirl`] permits the approximation.
pub fn pauli_expressible(toggles: &NoiseToggles) -> bool {
    (!toggles.idle_coherent && !toggles.idle_crosstalk) || toggles.coherent_twirl
}

/// One-qubit Clifford tableau op a gate lowers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CliffGate1 {
    I,
    X,
    Y,
    Z,
    H,
    S,
    Sdg,
    Sx,
    Sxdg,
}

/// Two-qubit Clifford tableau op a gate lowers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CliffGate2 {
    Cx,
    Cz,
    Swap,
}

/// Lowers a one-qubit gate to a tableau op, `None` when non-Clifford.
/// `RZ`/`P` at quarter-turn angles (tolerance 1e-9 rad, matching the
/// decoy layer's Clifford rounding) lower to I/S/Z/S†.
pub(crate) fn lower_clifford1(g: Gate) -> Option<CliffGate1> {
    match g {
        Gate::I => Some(CliffGate1::I),
        Gate::X => Some(CliffGate1::X),
        Gate::Y => Some(CliffGate1::Y),
        Gate::Z => Some(CliffGate1::Z),
        Gate::H => Some(CliffGate1::H),
        Gate::S => Some(CliffGate1::S),
        Gate::Sdg => Some(CliffGate1::Sdg),
        Gate::SX => Some(CliffGate1::Sx),
        Gate::SXdg => Some(CliffGate1::Sxdg),
        Gate::RZ(t) | Gate::P(t) => {
            let k = (t / FRAC_PI_2).round();
            if (t - k * FRAC_PI_2).abs() > 1e-9 {
                return None;
            }
            Some(match k.rem_euclid(4.0) as u64 {
                0 => CliffGate1::I,
                1 => CliffGate1::S,
                2 => CliffGate1::Z,
                _ => CliffGate1::Sdg,
            })
        }
        _ => None,
    }
}

/// Lowers a two-qubit gate to a tableau op, `None` when non-Clifford.
pub(crate) fn lower_clifford2(g: Gate) -> Option<CliffGate2> {
    match g {
        Gate::CX => Some(CliffGate2::Cx),
        Gate::CZ => Some(CliffGate2::Cz),
        Gate::Swap => Some(CliffGate2::Swap),
        _ => None,
    }
}

/// Whether every gate of the scheduled circuit lowers to a tableau op.
pub fn clifford_lowerable(timed: &TimedCircuit) -> bool {
    timed.events().iter().all(|e| match &e.instr.kind {
        qcirc::OpKind::Gate(g) => match e.instr.qubits.len() {
            1 => lower_clifford1(*g).is_some(),
            2 => lower_clifford2(*g).is_some(),
            _ => false,
        },
        _ => true,
    })
}

/// Decides the engine for a scheduled circuit under a machine's noise
/// toggles and routing policy. The active-qubit cap applies uniformly to
/// both engines (checked during plan compilation, not here).
pub fn select_engine(
    timed: &TimedCircuit,
    toggles: &NoiseToggles,
    policy: EnginePolicy,
) -> SimEngine {
    if policy == EnginePolicy::ForceStateVector {
        return SimEngine::StateVector;
    }
    if pauli_expressible(toggles) && clifford_lowerable(timed) {
        SimEngine::Chp
    } else {
        SimEngine::StateVector
    }
}

/// Per-machine routing counters, shared by all clones (like the plan
/// cache) so batch workers report into one place.
#[derive(Debug, Default)]
pub(crate) struct EngineCounters {
    pub chp: AtomicU64,
    pub statevec: AtomicU64,
    pub batch_workers: AtomicU64,
    pub batch_job_threads: AtomicU64,
}

impl EngineCounters {
    pub fn snapshot(&self) -> EngineStats {
        EngineStats {
            chp_executions: self.chp.load(Ordering::Relaxed),
            statevec_executions: self.statevec.load(Ordering::Relaxed),
            last_batch_workers: self.batch_workers.load(Ordering::Relaxed),
            last_batch_job_threads: self.batch_job_threads.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of a machine's engine-routing split and the thread layout of
/// its most recent batch (see [`Machine::engine_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Executions routed to the CHP stabilizer engine.
    pub chp_executions: u64,
    /// Executions routed to the dense state-vector engine.
    pub statevec_executions: u64,
    /// Scoped worker threads used by the most recent `execute_batch`.
    pub last_batch_workers: u64,
    /// Trajectory threads granted to each job of that batch.
    pub last_batch_job_threads: u64,
}

/// Runs one noise realization of a compiled plan on its engine.
pub(crate) fn run_trajectory(
    machine: &Machine,
    plan: &CompiledPlan,
    shots: u64,
    rng: &mut StdRng,
) -> Result<Counts, ExecError> {
    match plan.engine {
        SimEngine::StateVector => run_trajectory_dense(machine, plan, shots, rng),
        SimEngine::Chp => run_trajectory_chp(machine, plan, shots, rng),
    }
}

/// Per-trajectory stochastic context shared by both engines: sampled
/// detunings (when the coherent channel is on) and per-episode crosstalk
/// jitter (when the crosstalk channel is on).
struct IdleContext {
    detuning: Vec<QubitDetuning>,
    jitter: Vec<Vec<f64>>,
}

impl IdleContext {
    fn sample(machine: &Machine, plan: &CompiledPlan, rng: &mut StdRng) -> Self {
        let cal = machine.device().calibration();
        let detuning = if plan.needs_detuning {
            plan.phys_of
                .iter()
                .map(|&p| QubitDetuning::sample(cal.qubit(p), rng))
                .collect()
        } else {
            Vec::new()
        };
        // Per-trajectory, per-CNOT-episode jitter: the phase kick a
        // spectator receives depends on the (shot-varying) state of the
        // gate qubits, so each episode's amplitude fluctuates around the
        // calibrated coupling. Dense DD can echo this out; sparse DD
        // cannot (Fig. 16 of the paper).
        let jitter = if plan.needs_jitter {
            plan.xtalk
                .iter()
                .map(|eps| {
                    eps.iter()
                        .map(|_| 1.0 + CROSSTALK_JITTER * standard_normal(rng))
                        .collect()
                })
                .collect()
        } else {
            Vec::new()
        };
        IdleContext { detuning, jitter }
    }

    /// The coherent phase accumulated over one idle window.
    fn phase(&mut self, idle: &IdleOp, rng: &mut StdRng) -> f64 {
        let q = idle.q as usize;
        let mut phase = if idle.detune {
            self.detuning[q].advance(idle.dt_ns, rng)
        } else {
            0.0
        };
        for &(ei, chi_overlap) in &idle.xtalk {
            phase += chi_overlap * self.jitter[q][ei as usize];
        }
        phase
    }
}

fn dense_pauli1(sv: &mut SoaStateVector, q: usize, which: u8) -> Result<(), statevec::SimError> {
    match which {
        // X = antidiag(1, 1); Y = antidiag(-i, i); Z = diag(1, -1).
        1 => sv.apply_antidiag1(C64::ONE, C64::ONE, q),
        2 => sv.apply_antidiag1(C64::new(0.0, -1.0), C64::I, q),
        3 => sv.apply_diag1(C64::ONE, C64::real(-1.0), q),
        _ => Ok(()),
    }
}

/// Dense-engine trajectory over the plan's lowered kernel stream.
fn run_trajectory_dense(
    machine: &Machine,
    plan: &CompiledPlan,
    shots: u64,
    rng: &mut StdRng,
) -> Result<Counts, ExecError> {
    let mut sv = SoaStateVector::try_new(plan.active_qubits())?;
    let mut ctx = IdleContext::sample(machine, plan, rng);
    let mut clbits = 0u64;
    for op in &plan.dense {
        match op {
            DenseOp::Idle(idle) => {
                let phase = ctx.phase(idle, rng);
                if phase != 0.0 {
                    sv.apply_diag1(
                        C64::cis(-phase / 2.0),
                        C64::cis(phase / 2.0),
                        idle.q as usize,
                    )?;
                }
                if let Some(floor) = &idle.floor {
                    dense_pauli1(&mut sv, idle.q as usize, floor.sample(rng))?;
                }
            }
            DenseOp::K1 { q, k } => match k {
                Kernel1::Full(m) => sv.apply1(m, *q as usize)?,
                Kernel1::Diag(d0, d1) => sv.apply_diag1(*d0, *d1, *q as usize)?,
                Kernel1::AntiDiag(a01, a10) => sv.apply_antidiag1(*a01, *a10, *q as usize)?,
            },
            DenseOp::K2 { a, b, k } => match k {
                Kernel2::Full(m) => sv.apply2(m, *a as usize, *b as usize)?,
                Kernel2::Cx => sv.apply_cx(*a as usize, *b as usize)?,
                Kernel2::Cz => sv.apply_cz(*a as usize, *b as usize)?,
                Kernel2::Swap => sv.apply_swap(*a as usize, *b as usize)?,
            },
            DenseOp::Err1 { q, p } => {
                if rng.gen::<f64>() < *p {
                    dense_pauli1(&mut sv, *q as usize, rng.gen_range(1..4))?;
                }
            }
            DenseOp::Err2 { a, b, p, reps } => {
                for _ in 0..*reps {
                    if rng.gen::<f64>() < *p {
                        // One of the 15 non-identity two-qubit Paulis.
                        let idx = rng.gen_range(1..16);
                        dense_pauli1(&mut sv, *a as usize, (idx & 3) as u8)?;
                        dense_pauli1(&mut sv, *b as usize, (idx >> 2) as u8)?;
                    }
                }
            }
            DenseOp::Floor { q, floor } => {
                dense_pauli1(&mut sv, *q as usize, floor.sample(rng))?;
            }
            DenseOp::Measure { q, c, p_flip } => {
                let mut bit = sv.measure(*q as usize, rng)?;
                if rng.gen::<f64>() < *p_flip {
                    bit = !bit;
                }
                if bit {
                    clbits |= 1 << *c;
                } else {
                    clbits &= !(1 << *c);
                }
            }
            DenseOp::Reset { q } => sv.reset(*q as usize, rng)?,
        }
    }

    let mut counts = Counts::new(plan.num_clbits);
    if plan.terminal_measurements {
        sv.normalize();
        for _ in 0..shots {
            let sample = sv.sample(rng);
            let mut out = 0u64;
            for &(q, c, p_flip) in &plan.deferred {
                let mut bit = sample >> q & 1 == 1;
                if rng.gen::<f64>() < p_flip {
                    bit = !bit;
                }
                if bit {
                    out |= 1 << c;
                }
            }
            counts.record(out);
        }
    } else {
        // Mid-circuit measurement: the trajectory fixed one outcome
        // record; honor shot count by replay-free repetition (callers
        // wanting independent mid-circuit shots raise `trajectories`).
        counts.record_many(clbits, shots);
    }
    Ok(counts)
}

/// Applies a stochastic Pauli to the tableau, commuting it through the
/// pending phase: X/Y anticommute with Z, so they negate `θ`.
fn chp_pauli1(tab: &mut Tableau, theta: &mut [f64], q: usize, which: u8) {
    match which {
        1 => {
            tab.x(q);
            theta[q] = -theta[q];
        }
        2 => {
            tab.y(q);
            theta[q] = -theta[q];
        }
        3 => tab.z(q),
        _ => {}
    }
}

/// Flushes a pending phase as a stochastic Z (the Pauli twirl of
/// `RZ(θ)`), consuming one uniform draw unless `θ` is exactly zero.
fn chp_flush(tab: &mut Tableau, theta: &mut [f64], q: usize, rng: &mut StdRng) {
    if theta[q] != 0.0 {
        if rng.gen::<f64>() < z_twirl_probability(theta[q]) {
            tab.z(q);
        }
        theta[q] = 0.0;
    }
}

/// CHP-engine trajectory: tableau evolution with the toggling-frame
/// phase twirl described in the module docs.
fn run_trajectory_chp(
    machine: &Machine,
    plan: &CompiledPlan,
    shots: u64,
    rng: &mut StdRng,
) -> Result<Counts, ExecError> {
    let k = plan.active_qubits();
    let mut tab = Tableau::new(k);
    let mut theta = vec![0.0f64; k];
    let mut ctx = IdleContext::sample(machine, plan, rng);
    let mut clbits = 0u64;
    for op in &plan.cliff {
        match op {
            CliffOp::Idle(idle) => {
                theta[idle.q as usize] += ctx.phase(idle, rng);
                if let Some(floor) = &idle.floor {
                    chp_pauli1(&mut tab, &mut theta, idle.q as usize, floor.sample(rng));
                }
            }
            CliffOp::G1 { q, g } => {
                let q = *q as usize;
                match g {
                    CliffGate1::I => {}
                    // Diagonal: commutes with the pending RZ.
                    CliffGate1::Z => tab.z(q),
                    CliffGate1::S => tab.s(q),
                    CliffGate1::Sdg => tab.sdg(q),
                    // X-like: conjugates RZ(θ) to RZ(−θ) — the echo.
                    CliffGate1::X => {
                        tab.x(q);
                        theta[q] = -theta[q];
                    }
                    CliffGate1::Y => {
                        tab.y(q);
                        theta[q] = -theta[q];
                    }
                    // Frame-mixing: flush, then apply.
                    CliffGate1::H => {
                        chp_flush(&mut tab, &mut theta, q, rng);
                        tab.h(q);
                    }
                    CliffGate1::Sx => {
                        chp_flush(&mut tab, &mut theta, q, rng);
                        tab.sx(q);
                    }
                    CliffGate1::Sxdg => {
                        chp_flush(&mut tab, &mut theta, q, rng);
                        tab.sxdg(q);
                    }
                }
            }
            CliffOp::G2 { a, b, g } => {
                let (a, b) = (*a as usize, *b as usize);
                match g {
                    CliffGate2::Cx => {
                        // RZ commutes with the control; the target frame
                        // mixes under the conditional X.
                        chp_flush(&mut tab, &mut theta, b, rng);
                        tab.cx(a, b);
                    }
                    CliffGate2::Cz => tab.cz(a, b),
                    CliffGate2::Swap => {
                        tab.swap(a, b);
                        theta.swap(a, b);
                    }
                }
            }
            CliffOp::Err1 { q, p } => {
                if rng.gen::<f64>() < *p {
                    chp_pauli1(&mut tab, &mut theta, *q as usize, rng.gen_range(1..4));
                }
            }
            CliffOp::Err2 { a, b, p, reps } => {
                for _ in 0..*reps {
                    if rng.gen::<f64>() < *p {
                        let idx = rng.gen_range(1..16);
                        chp_pauli1(&mut tab, &mut theta, *a as usize, (idx & 3) as u8);
                        chp_pauli1(&mut tab, &mut theta, *b as usize, (idx >> 2) as u8);
                    }
                }
            }
            CliffOp::Floor { q, floor } => {
                chp_pauli1(&mut tab, &mut theta, *q as usize, floor.sample(rng));
            }
            CliffOp::Measure { q, c, p_flip } => {
                let q = *q as usize;
                // The pending Z rotation commutes with Z-basis collapse
                // (global phase on the surviving branch): clear exactly.
                theta[q] = 0.0;
                let mut bit = tab.measure(q, rng).bit();
                if rng.gen::<f64>() < *p_flip {
                    bit = !bit;
                }
                if bit {
                    clbits |= 1 << *c;
                } else {
                    clbits &= !(1 << *c);
                }
            }
            CliffOp::Reset { q } => {
                let q = *q as usize;
                theta[q] = 0.0;
                if tab.measure(q, rng).bit() {
                    tab.x(q);
                }
            }
        }
    }

    let mut counts = Counts::new(plan.num_clbits);
    if plan.terminal_measurements {
        // Pending phases are diagonal: they cannot change Z-basis
        // probabilities, so terminal sampling ignores them exactly.
        for _ in 0..shots {
            let mut shot_tab = tab.clone();
            let mut out = 0u64;
            for &(q, c, p_flip) in &plan.deferred {
                let mut bit = shot_tab.measure(q as usize, rng).bit();
                if rng.gen::<f64>() < p_flip {
                    bit = !bit;
                }
                if bit {
                    out |= 1 << c;
                }
            }
            counts.record(out);
        }
    } else {
        counts.record_many(clbits, shots);
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clifford_lowering_covers_quarter_angles() {
        use std::f64::consts::PI;
        assert_eq!(lower_clifford1(Gate::RZ(0.0)), Some(CliffGate1::I));
        assert_eq!(lower_clifford1(Gate::RZ(FRAC_PI_2)), Some(CliffGate1::S));
        assert_eq!(lower_clifford1(Gate::RZ(PI)), Some(CliffGate1::Z));
        assert_eq!(lower_clifford1(Gate::RZ(-FRAC_PI_2)), Some(CliffGate1::Sdg));
        assert_eq!(lower_clifford1(Gate::RZ(2.0 * PI)), Some(CliffGate1::I));
        assert_eq!(lower_clifford1(Gate::RZ(0.3)), None);
        assert_eq!(lower_clifford1(Gate::P(FRAC_PI_2)), Some(CliffGate1::S));
        assert_eq!(lower_clifford1(Gate::T), None);
        assert_eq!(lower_clifford2(Gate::CX), Some(CliffGate2::Cx));
    }

    #[test]
    fn pauli_expressibility_follows_toggles() {
        let mut t = NoiseToggles::default();
        assert!(pauli_expressible(&t), "twirl permits coherent channels");
        t.coherent_twirl = false;
        assert!(!pauli_expressible(&t), "coherent channels without twirl");
        t.idle_coherent = false;
        t.idle_crosstalk = false;
        assert!(pauli_expressible(&t), "pure Pauli noise is always eligible");
    }
}
