//! The noisy trajectory executor — "the quantum machine" of this stack.
//!
//! Executes a [`TimedCircuit`] under the device noise model by Monte-Carlo
//! trajectories. Each trajectory draws one realization of every stochastic
//! process (static detunings, OU paths, gate/readout error events) and
//! replays the circuit's compiled op stream
//! ([`CompiledPlan`](crate::plan::CompiledPlan)) on the engine the plan
//! routed to — the CHP stabilizer tableau for Clifford circuits under
//! Pauli-expressible noise, the dense SoA state vector otherwise (see
//! [`crate::engine`]). Shots are distributed over trajectories.
//!
//! The crucial property: DD pulses inserted by ADAPT are ordinary gates
//! here. Echo cancellation of the coherent detuning, its degradation at
//! long pulse spacing, and the extra depolarizing cost of each pulse all
//! emerge from the simulation rather than being modeled directly — on
//! *both* engines (the CHP path tracks idle phases in a toggling frame,
//! so X/Y pulses echo them out exactly as the dense path does).

use crate::backend::{JobSpec, ShotBatch};
use crate::engine::{EngineCounters, EnginePolicy, EngineStats, SimEngine};
use crate::plan::{PlanCache, PlanCacheStats};
use device::{Device, SeedSpawner};
use qcirc::{Circuit, Counts};
use rand::rngs::StdRng;
use statevec::SimError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use transpiler::{try_schedule, ScheduleError, SchedulePolicy, TimedCircuit};

/// Relative std-dev of the per-CNOT crosstalk kick around its calibrated
/// coupling (state-dependent ZZ fluctuation).
pub const CROSSTALK_JITTER: f64 = 1.0;

/// Execution errors — the workspace-wide taxonomy for everything that can
/// go wrong between a circuit and its counts.
///
/// Variants split into two classes: *permanent* failures (the same request
/// will fail again: oversized circuits, simulator bugs, malformed
/// schedules) and *transient* failures (a retry may succeed: flaky
/// backend jobs, timeouts). [`ExecError::is_transient`] is the class
/// predicate retry loops key off.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The circuit touches more qubits than the dense simulator can hold.
    TooManyActiveQubits {
        /// Number of active qubits in the circuit.
        active: usize,
        /// Simulator limit.
        limit: usize,
    },
    /// Underlying simulator error.
    Sim(SimError),
    /// The circuit could not be scheduled (malformed timings).
    Schedule(ScheduleError),
    /// A backend job failed in a way a retry may fix (queue hiccup,
    /// control-electronics glitch, injected fault).
    JobFailed {
        /// Backend-assigned job index.
        job: u64,
        /// Human-readable failure cause.
        reason: String,
    },
    /// A backend job exceeded its wall-clock budget.
    Timeout {
        /// Backend-assigned job index.
        job: u64,
        /// The budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
    /// A retry loop gave up: every attempt failed transiently.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The error from the final attempt.
        last: Box<ExecError>,
    },
    /// The request's [`crate::Deadline`] expired before it could finish.
    /// Not transient: retrying would only burn more of a budget that is
    /// already gone — the caller must re-submit with a fresh deadline.
    DeadlineExceeded {
        /// Time counted against the budget when the check tripped, ms.
        elapsed_ms: u64,
        /// The budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
    /// The request was cooperatively cancelled via its
    /// [`crate::CancelToken`]. Not transient by design.
    Cancelled,
}

impl ExecError {
    /// Whether a retry of the same request may succeed.
    ///
    /// [`ExecError::RetriesExhausted`] is deliberately *not* transient:
    /// it already represents an exhausted retry budget, and treating it as
    /// retryable would let nested retry loops multiply their budgets.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ExecError::JobFailed { .. } | ExecError::Timeout { .. }
        )
    }

    /// Stable snake_case tag per variant, used as the metric suffix for
    /// per-kind error accounting.
    pub fn kind(&self) -> &'static str {
        match self {
            ExecError::TooManyActiveQubits { .. } => "too_many_active_qubits",
            ExecError::Sim(_) => "sim",
            ExecError::Schedule(_) => "schedule",
            ExecError::JobFailed { .. } => "job_failed",
            ExecError::Timeout { .. } => "timeout",
            ExecError::RetriesExhausted { .. } => "retries_exhausted",
            ExecError::DeadlineExceeded { .. } => "deadline_exceeded",
            ExecError::Cancelled => "cancelled",
        }
    }

    /// Whether the error is an interruption of the request — the caller's
    /// deadline expired or it was cancelled — rather than a failure of
    /// the backend. Interruptions are neither retried nor treated as
    /// device unavailability: the work is simply abandoned.
    pub fn is_interruption(&self) -> bool {
        matches!(
            self,
            ExecError::DeadlineExceeded { .. } | ExecError::Cancelled
        )
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::TooManyActiveQubits { active, limit } => {
                write!(
                    f,
                    "{active} active qubits exceed the simulator limit of {limit}"
                )
            }
            ExecError::Sim(e) => write!(f, "simulation error: {e}"),
            ExecError::Schedule(e) => write!(f, "scheduling error: {e}"),
            ExecError::JobFailed { job, reason } => {
                write!(f, "job {job} failed transiently: {reason}")
            }
            ExecError::Timeout { job, budget_ms } => {
                write!(f, "job {job} exceeded its {budget_ms} ms budget")
            }
            ExecError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
            ExecError::DeadlineExceeded {
                elapsed_ms,
                budget_ms,
            } => {
                write!(
                    f,
                    "deadline exceeded: {elapsed_ms} ms elapsed against a {budget_ms} ms budget"
                )
            }
            ExecError::Cancelled => write!(f, "request cancelled"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<SimError> for ExecError {
    fn from(e: SimError) -> Self {
        ExecError::Sim(e)
    }
}

impl From<ScheduleError> for ExecError {
    fn from(e: ScheduleError) -> Self {
        ExecError::Schedule(e)
    }
}

/// Knobs for one execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionConfig {
    /// Total measurement shots.
    pub shots: u64,
    /// Independent noise realizations; shots are spread across them.
    pub trajectories: u32,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (`0` = use all available cores). Both the auto and
    /// explicit settings are capped by [`ExecutionConfig::trajectories`]
    /// — one thread per trajectory is the maximum useful parallelism —
    /// and floored at 1. The thread count never affects results: shots
    /// are partitioned per trajectory with per-trajectory derived seeds,
    /// so any worker count produces bit-identical counts.
    pub threads: usize,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            shots: 8192,
            trajectories: 128,
            seed: 0,
            threads: 0,
        }
    }
}

impl ExecutionConfig {
    /// Convenience constructor with a specific seed.
    pub fn seeded(seed: u64) -> Self {
        ExecutionConfig {
            seed,
            ..Default::default()
        }
    }

    /// Budget-reduced configuration for inner search loops.
    pub fn fast(seed: u64) -> Self {
        ExecutionConfig {
            shots: 2048,
            trajectories: 48,
            seed,
            threads: 0,
        }
    }
}

/// Enables/disables individual noise channels — the ablation knobs used
/// by the `ablation_noise` experiment and the error-budget diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoiseToggles {
    /// Depolarizing gate errors (1q and 2q).
    pub gate_err: bool,
    /// Readout bit flips.
    pub readout_err: bool,
    /// Coherent idling detuning (static + OU).
    pub idle_coherent: bool,
    /// Spectator crosstalk from active CNOT links.
    pub idle_crosstalk: bool,
    /// Stochastic T1/white-dephasing Pauli floor.
    pub idle_floor: bool,
    /// Permit the CHP engine to Pauli-twirl the coherent idle channels
    /// (detuning/crosstalk) at frame-mixing gates. When `false` and a
    /// coherent channel is on, circuits are never routed to the
    /// stabilizer engine — the knob that flips routing eligibility (see
    /// [`crate::engine::pauli_expressible`]).
    pub coherent_twirl: bool,
}

impl Default for NoiseToggles {
    fn default() -> Self {
        NoiseToggles {
            gate_err: true,
            readout_err: true,
            idle_coherent: true,
            idle_crosstalk: true,
            idle_floor: true,
            coherent_twirl: true,
        }
    }
}

impl NoiseToggles {
    /// Everything off: the executor becomes an (expensive) ideal sampler.
    /// The twirl stays permitted — with no coherent channel enabled it
    /// never fires, so eligible circuits still take the CHP fast path.
    pub fn none() -> Self {
        NoiseToggles {
            gate_err: false,
            readout_err: false,
            idle_coherent: false,
            idle_crosstalk: false,
            idle_floor: false,
            coherent_twirl: true,
        }
    }
}

/// A device bound to the trajectory executor.
///
/// # Examples
///
/// ```
/// use device::Device;
/// use machine::{ExecutionConfig, Machine};
/// use qcirc::Circuit;
///
/// let machine = Machine::new(Device::ibmq_rome(7));
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).measure_all();
/// let counts = machine
///     .execute(&c, &ExecutionConfig { shots: 512, trajectories: 16, seed: 1, threads: 1 })
///     .unwrap();
/// assert_eq!(counts.total(), 512);
/// // Bell correlations survive the (mild) noise.
/// let agree = counts.get(0b00) + counts.get(0b11);
/// assert!(agree > 400);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    device: Device,
    toggles: NoiseToggles,
    /// Engine-routing policy ([`EnginePolicy::Auto`] unless pinned).
    policy: EnginePolicy,
    /// LRU of compiled plans, shared by every clone of this machine so
    /// batch workers and repeated executions reuse each other's work.
    plans: Arc<PlanCache>,
    /// Engine-routing counters, shared across clones like the cache.
    engines: Arc<EngineCounters>,
}

impl Machine {
    /// Binds the executor to a device with all noise channels enabled.
    pub fn new(device: Device) -> Self {
        Machine {
            device,
            toggles: NoiseToggles::default(),
            policy: EnginePolicy::Auto,
            plans: Arc::new(PlanCache::default()),
            engines: Arc::new(EngineCounters::default()),
        }
    }

    /// Binds the executor with selected noise channels (ablation studies).
    pub fn with_toggles(device: Device, toggles: NoiseToggles) -> Self {
        Machine {
            device,
            toggles,
            policy: EnginePolicy::Auto,
            plans: Arc::new(PlanCache::default()),
            engines: Arc::new(EngineCounters::default()),
        }
    }

    /// Pins the engine-routing policy (builder style). Forcing the dense
    /// engine is how channel-validation tests and cross-engine
    /// equivalence checks obtain a reference run.
    pub fn with_engine_policy(mut self, policy: EnginePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active noise toggles.
    pub fn toggles(&self) -> &NoiseToggles {
        &self.toggles
    }

    /// The active engine-routing policy.
    pub fn engine_policy(&self) -> EnginePolicy {
        self.policy
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Effectiveness counters of this machine's plan cache (shared across
    /// clones).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// Engine-routing split and last-batch thread layout (shared across
    /// clones).
    pub fn engine_stats(&self) -> EngineStats {
        self.engines.snapshot()
    }

    /// Schedules (ALAP) and executes a plain circuit.
    ///
    /// # Errors
    ///
    /// See [`Machine::execute_timed`].
    pub fn execute(
        &self,
        circuit: &Circuit,
        config: &ExecutionConfig,
    ) -> Result<Counts, ExecError> {
        let timed = try_schedule(circuit, &self.device, SchedulePolicy::Alap)?;
        self.execute_timed(&timed, config)
    }

    /// Executes a timed circuit under the device noise model.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::TooManyActiveQubits`] when the circuit touches
    /// more qubits than the dense simulator supports, or a wrapped
    /// [`SimError`] on internal failures.
    pub fn execute_timed(
        &self,
        timed: &TimedCircuit,
        config: &ExecutionConfig,
    ) -> Result<Counts, ExecError> {
        let m = crate::metrics::metrics();
        m.executions.inc();
        let _span = m.execute_us.time();
        let compiled = self
            .plans
            .get_or_build(timed, &self.device, &self.toggles, self.policy)?;
        match compiled.engine {
            SimEngine::Chp => {
                self.engines.chp.fetch_add(1, Ordering::Relaxed);
                m.engine_chp.inc();
            }
            SimEngine::StateVector => {
                self.engines.statevec.fetch_add(1, Ordering::Relaxed);
                m.engine_statevec.inc();
            }
        }
        let trajectories = config.trajectories.max(1);
        let shots_per_traj = config.shots.div_ceil(trajectories as u64).max(1);
        let spawner = SeedSpawner::new(config.seed);

        // Both paths cap at one thread per trajectory: extra workers
        // would only idle (and results are thread-count invariant anyway).
        let threads = if config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.threads
        }
        .min(trajectories as usize)
        .max(1);

        let traj_seeds: Vec<u64> = (0..trajectories)
            .map(|i| spawner.derive(i as u64))
            .collect();
        let mut remaining = config.shots;
        let mut traj_shots = Vec::with_capacity(trajectories as usize);
        for _ in 0..trajectories {
            let s = remaining.min(shots_per_traj);
            traj_shots.push(s);
            remaining -= s;
        }

        let run_range = |range: std::ops::Range<usize>| -> Result<Counts, ExecError> {
            let mut counts = Counts::new(timed.num_clbits());
            for i in range {
                if traj_shots[i] == 0 {
                    continue;
                }
                let mut rng = StdRng::from_seed_u64(traj_seeds[i]);
                let c = crate::engine::run_trajectory(self, &compiled, traj_shots[i], &mut rng)?;
                counts.merge(&c);
            }
            Ok(counts)
        };

        if threads <= 1 {
            return run_range(0..trajectories as usize);
        }
        let chunk = (trajectories as usize).div_ceil(threads);
        let results: Vec<Result<Counts, ExecError>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(trajectories as usize);
                if lo >= hi {
                    break;
                }
                let run = &run_range;
                handles.push(scope.spawn(move || run(lo..hi)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("trajectory worker panicked"))
                .collect()
        });
        let mut counts = Counts::new(timed.num_clbits());
        for r in results {
            counts.merge(&r?);
        }
        Ok(counts)
    }

    /// Executes a slice of jobs with scoped worker threads, preserving
    /// the per-job result order. The thread budget (the largest per-job
    /// request; 0 = all cores) is split two ways: up to `budget` workers
    /// run jobs concurrently, and each job gets `budget / workers`
    /// trajectory threads of its own — so a batch smaller than the core
    /// count still saturates the machine by parallelizing *inside* jobs.
    /// Valid because [`Machine::execute_timed`] results are thread-count
    /// invariant: results are bit-identical to executing the jobs
    /// serially, whatever the split.
    pub(crate) fn execute_batch_jobs(
        &self,
        jobs: &[JobSpec<'_>],
    ) -> Vec<Result<ShotBatch, ExecError>> {
        let m = crate::metrics::metrics();
        m.batches.inc();
        m.batch_jobs.add(jobs.len() as u64);
        m.batch_fanout.record(jobs.len() as u64);
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let hint = jobs.iter().map(|j| j.config.threads).max().unwrap_or(0);
        let budget = if hint == 0 { avail } else { hint };
        let workers = budget.min(jobs.len()).max(1);
        let per_job_threads = (budget / workers).max(1);
        self.engines
            .batch_workers
            .store(workers as u64, Ordering::Relaxed);
        self.engines
            .batch_job_threads
            .store(per_job_threads as u64, Ordering::Relaxed);
        m.batch_workers.set(workers as i64);
        m.batch_job_threads.set(per_job_threads as i64);

        let run_one = |job: &JobSpec<'_>| -> Result<ShotBatch, ExecError> {
            let cfg = ExecutionConfig {
                threads: per_job_threads,
                ..job.config
            };
            let counts = self.execute_timed(job.timed, &cfg)?;
            Ok(ShotBatch::complete(counts, cfg.shots))
        };

        if workers <= 1 {
            return jobs.iter().map(run_one).collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<ShotBatch, ExecError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    *slots[i].lock().expect("batch slot lock") = Some(run_one(&jobs[i]));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("batch slot lock")
                    .expect("every job index was claimed by a worker")
            })
            .collect()
    }
}

/// Extension trait: seed an [`StdRng`] from a `u64` (newtype-free helper).
trait SeedU64 {
    fn from_seed_u64(seed: u64) -> Self;
}

impl SeedU64 for StdRng {
    fn from_seed_u64(seed: u64) -> Self {
        use rand::SeedableRng;
        StdRng::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::Gate;
    use std::collections::BTreeMap;

    fn cfg(seed: u64) -> ExecutionConfig {
        ExecutionConfig {
            shots: 2000,
            trajectories: 40,
            seed,
            threads: 1,
        }
    }

    fn fidelity(ideal: &BTreeMap<u64, f64>, counts: &Counts) -> f64 {
        let mut tvd = 0.0;
        let mut seen = std::collections::BTreeSet::new();
        for (&k, &p) in ideal {
            tvd += (p - counts.probability(k)).abs();
            seen.insert(k);
        }
        for (k, _) in counts.iter() {
            if !seen.contains(&k) {
                tvd += counts.probability(k);
            }
        }
        1.0 - tvd / 2.0
    }

    #[test]
    fn noiseless_limit_reproduces_ideal_distribution() {
        // A machine with negligible noise: use tiny circuit and compare
        // against the ideal Bell distribution within sampling error.
        let m = Machine::new(Device::ibmq_guadalupe(1));
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let counts = m.execute(&c, &cfg(5)).unwrap();
        let ideal = statevec::ideal_distribution(&c).unwrap();
        let f = fidelity(&ideal, &counts);
        assert!(f > 0.9, "short Bell circuit should stay high fidelity: {f}");
    }

    #[test]
    fn deterministic_across_runs_and_thread_counts() {
        let m = Machine::new(Device::ibmq_rome(9));
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let a = m.execute(&c, &cfg(7)).unwrap();
        let b = m.execute(&c, &cfg(7)).unwrap();
        assert_eq!(a, b);
        let mut cfg4 = cfg(7);
        cfg4.threads = 4;
        let d = m.execute(&c, &cfg4).unwrap();
        assert_eq!(a, d);
    }

    #[test]
    fn different_seeds_differ() {
        let m = Machine::new(Device::ibmq_rome(9));
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let a = m.execute(&c, &cfg(1)).unwrap();
        let b = m.execute(&c, &cfg(2)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn long_idle_degrades_fidelity() {
        // Ramsey-style: H — idle — H should decay with idle time.
        let m = Machine::new(Device::ibmq_london(3));
        let run = |idle_ns: f64| -> f64 {
            let mut c = Circuit::new(1);
            c.h(0);
            c.delay(idle_ns, 0);
            c.h(0);
            c.measure(0, 0);
            let counts = m.execute(&c, &cfg(11)).unwrap();
            counts.probability(0) // survival of |0⟩
        };
        let short = run(50.0);
        let long = run(20_000.0);
        assert!(
            short > long + 0.05,
            "idling must hurt: short {short}, long {long}"
        );
    }

    #[test]
    fn spin_echo_recovers_fidelity() {
        // The core DD physics end-to-end: H — idle — X — idle — X — idle…
        // echoes out the quasi-static detuning.
        let m = Machine::new(Device::ibmq_london(3));
        let idle = 20_000.0;
        let free = {
            let mut c = Circuit::new(1);
            c.h(0);
            c.delay(idle, 0);
            c.h(0).measure(0, 0);
            m.execute(&c, &cfg(13)).unwrap().probability(0)
        };
        let echoed = {
            let mut c = Circuit::new(1);
            c.h(0);
            // Dense XY4: 10 repetitions so the pulse spacing stays well
            // inside the OU correlation time.
            let seg = idle / 40.0;
            for _ in 0..10 {
                for g in [Gate::X, Gate::Y, Gate::X, Gate::Y] {
                    c.delay(seg, 0);
                    c.gate(g, &[0]);
                }
            }
            c.h(0).measure(0, 0);
            m.execute(&c, &cfg(13)).unwrap().probability(0)
        };
        assert!(
            echoed > free + 0.05,
            "DD must beat free evolution: free {free}, echoed {echoed}"
        );
    }

    #[test]
    fn dd_pulses_cost_fidelity_when_noise_is_absent_target() {
        // On a qubit idling in |0⟩ (insensitive to dephasing), DD only
        // adds pulse errors.
        let m = Machine::new(Device::ibmq_london(3));
        let idle = 20_000.0;
        let plain = {
            let mut c = Circuit::new(1);
            c.delay(idle, 0);
            c.measure(0, 0);
            m.execute(&c, &cfg(17)).unwrap().probability(0)
        };
        let with_pulses = {
            let mut c = Circuit::new(1);
            let reps = 40;
            let seg = idle / (4.0 * reps as f64);
            for _ in 0..reps {
                for g in [Gate::X, Gate::Y, Gate::X, Gate::Y] {
                    c.delay(seg, 0);
                    c.gate(g, &[0]);
                }
            }
            c.measure(0, 0);
            m.execute(&c, &cfg(17)).unwrap().probability(0)
        };
        assert!(
            plain > with_pulses,
            "pulse errors must show: plain {plain}, pulsed {with_pulses}"
        );
    }

    #[test]
    fn crosstalk_from_neighbor_cnots_hurts_idle_qubit() {
        // §3.2: an idle qubit loses fidelity when CNOTs run nearby. Find a
        // spectator strongly coupled to a link, idle it in |+⟩ while the
        // link fires repeatedly.
        let dev = Device::ibmq_guadalupe(21);
        let cal = dev.calibration().clone();
        let topo = dev.topology().clone();
        // Pick the (qubit, link) combination with maximal |chi|.
        let mut best = (0u32, device::LinkId(0), 0.0f64);
        for q in 0..16u32 {
            for (l, chi) in cal.crosstalk_on(q) {
                if chi.abs() > best.2.abs() {
                    best = (q, l, chi);
                }
            }
        }
        let (victim, link, chi) = best;
        assert!(chi.abs() > 0.1, "calibration should have a strong coupling");
        let (a, b) = topo.link_endpoints(link);
        let m = Machine::new(dev);
        let run = |with_cnots: bool| -> f64 {
            let mut c = Circuit::new(16);
            c.h(victim);
            // Pin the preparation before the burst (ALAP would otherwise
            // delay it past the CNOTs, hiding the crosstalk).
            c.barrier(&[victim, a, b]);
            for _ in 0..12 {
                if with_cnots {
                    c.cx(a, b);
                } else {
                    c.delay(400.0, a);
                }
            }
            // Wait out the same wall-clock on the victim, then unwind.
            c.barrier(&[victim, a, b]);
            c.h(victim);
            c.measure(victim, 0);
            let counts = m.execute(&c, &cfg(23)).unwrap();
            counts.probability(0)
        };
        let quiet = run(false);
        let noisy = run(true);
        assert!(
            quiet > noisy + 0.03,
            "concurrent CNOTs must hurt the spectator: quiet {quiet}, noisy {noisy}"
        );
    }

    #[test]
    fn readout_error_shows_on_trivial_circuit() {
        let m = Machine::new(Device::ibmq_toronto(2));
        let mut c = Circuit::new(1);
        c.measure(0, 0);
        let counts = m.execute(&c, &cfg(3)).unwrap();
        let p1 = counts.probability(1);
        let expected = m.device().qubit(0).err_readout;
        assert!(p1 > 0.0, "readout flips must occur");
        assert!(
            (p1 - expected).abs() < 0.05,
            "p1 {p1} vs calibrated {expected}"
        );
    }

    #[test]
    fn too_many_active_qubits_rejected() {
        let dev = Device::all_to_all(27, 1);
        let m = Machine::new(dev);
        let mut c = Circuit::new(27);
        for q in 0..27 {
            c.h(q as u32);
        }
        c.measure_all();
        let err = m.execute(&c, &cfg(1)).unwrap_err();
        assert!(matches!(
            err,
            ExecError::TooManyActiveQubits { active: 27, .. }
        ));
    }

    #[test]
    fn inactive_qubits_do_not_count_against_limit() {
        // 27-qubit register but only 2 active qubits.
        let m = Machine::new(Device::ibmq_toronto(4));
        let mut c = Circuit::new(27);
        c.h(12).cx(12, 13).measure(12, 0).measure(13, 1);
        let counts = m.execute(&c, &cfg(9)).unwrap();
        assert_eq!(counts.total(), 2000);
    }

    #[test]
    fn noise_free_executor_matches_ideal_on_transpiled_circuit() {
        // Regression: ALAP schedules once reversed zero-duration RZ chains,
        // which silently corrupted every transpiled execution.
        use transpiler::{transpile, TranspileOptions};
        let dev = Device::ibmq_toronto(2021);
        let mut c = Circuit::new(5);
        c.x(4).h(4);
        for q in 0..4 {
            c.h(q);
        }
        c.cx(0, 4).cx(2, 4).cx(3, 4);
        for q in 0..4 {
            c.h(q);
            c.measure(q, q);
        }
        let t = transpile(&c, &dev, &TranspileOptions::default());
        let m = Machine::with_toggles(dev, NoiseToggles::none());
        let counts = m
            .execute_timed(
                &t.timed,
                &ExecutionConfig {
                    shots: 64,
                    trajectories: 2,
                    seed: 1,
                    threads: 1,
                },
            )
            .unwrap();
        assert_eq!(counts.get(0b1101), 64, "{counts}");
    }

    #[test]
    fn explicit_thread_counts_are_capped_and_deterministic() {
        // An absurd explicit thread count must behave exactly like the
        // trajectory-capped one (and not spawn hundreds of idle workers).
        let m = Machine::new(Device::ibmq_rome(9));
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let mut base = cfg(7);
        base.trajectories = 2;
        let a = m.execute(&c, &base).unwrap();
        let mut huge = base;
        huge.threads = 512;
        let b = m.execute(&c, &huge).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_executions_hit_the_plan_cache() {
        let m = Machine::new(Device::ibmq_rome(9));
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        m.execute(&c, &cfg(1)).unwrap();
        m.execute(&c, &cfg(2)).unwrap();
        m.execute(&c, &cfg(3)).unwrap();
        let stats = m.plan_cache_stats();
        assert_eq!(stats.misses, 1, "one structure, one compile");
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.len, 1);
    }

    #[test]
    fn clones_share_the_plan_cache() {
        let m = Machine::new(Device::ibmq_rome(9));
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        m.execute(&c, &cfg(1)).unwrap();
        let clone = m.clone();
        clone.execute(&c, &cfg(2)).unwrap();
        assert_eq!(m.plan_cache_stats().hits, 1);
    }

    #[test]
    fn cached_plan_does_not_change_results() {
        let m = Machine::new(Device::ibmq_rome(9));
        let fresh = Machine::new(Device::ibmq_rome(9));
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let warm = m.execute(&c, &cfg(7)).unwrap(); // miss
        let hit = m.execute(&c, &cfg(7)).unwrap(); // hit
        let cold = fresh.execute(&c, &cfg(7)).unwrap();
        assert_eq!(warm, hit);
        assert_eq!(warm, cold);
    }

    #[test]
    fn shots_land_exactly() {
        let m = Machine::new(Device::ibmq_rome(2));
        let mut c = Circuit::new(1);
        c.h(0).measure(0, 0);
        for shots in [1u64, 7, 100, 1001] {
            let counts = m
                .execute(
                    &c,
                    &ExecutionConfig {
                        shots,
                        trajectories: 8,
                        seed: 3,
                        threads: 1,
                    },
                )
                .unwrap();
            assert_eq!(counts.total(), shots);
        }
    }
}
