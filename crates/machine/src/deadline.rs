//! Deadline propagation and cooperative cancellation.
//!
//! A [`Deadline`] is a shared, cheaply-cloneable handle carrying a time
//! budget and a [`CancelToken`]. It is created where a request enters the
//! system (the service's submit path, a harness, a test) and threaded
//! down through the retry layer and the mask search, which *check* it at
//! their natural yield points — between retry attempts, between
//! neighborhoods, between decoy batches — and stop early instead of
//! doing work nobody will wait for.
//!
//! # Virtual vs wall time
//!
//! Two clocks feed a deadline. *Charged* (virtual) time is added
//! explicitly via [`Deadline::charge_ms`] — the resilient executor
//! charges every backoff delay whether or not it actually sleeps. *Wall*
//! time is the real elapsed time since the deadline was created.
//! [`Deadline::within_ms`] counts both; [`Deadline::virtual_only`]
//! counts only charged time, making expiry a pure function of the seeded
//! execution schedule — the determinism mode used by tests and the chaos
//! harness, where two identical runs must cancel at the same points.

use crate::executor::ExecError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Process-wide anchor so wall-clock deadlines created at different
/// moments still compare on one absolute axis (see
/// [`Deadline::edf_key_us`]).
fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// A shared cancellation flag. Cloning hands out another handle to the
/// *same* flag: cancelling any clone cancels them all.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[derive(Debug)]
struct DeadlineInner {
    /// Wall-clock anchor (only consulted when `wall` is set).
    start: Instant,
    /// Total budget in milliseconds; `None` means unbounded.
    budget_ms: Option<u64>,
    /// Count real elapsed time toward the budget.
    wall: bool,
    /// Explicitly charged (virtual) time, in microseconds.
    charged_us: AtomicU64,
    token: CancelToken,
}

/// A time budget plus cancellation flag, threaded through an execution.
///
/// Cloning is cheap and shares state: all clones see the same charged
/// time and the same cancellation flag.
///
/// # Examples
///
/// ```
/// use machine::{Deadline, ExecError};
///
/// let d = Deadline::virtual_only(50);
/// assert!(d.check().is_ok());
/// d.charge_ms(60.0);
/// assert!(matches!(
///     d.check(),
///     Err(ExecError::DeadlineExceeded { budget_ms: 50, .. })
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct Deadline(Arc<DeadlineInner>);

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

impl Deadline {
    fn build(budget_ms: Option<u64>, wall: bool) -> Self {
        Deadline(Arc::new(DeadlineInner {
            start: Instant::now(),
            budget_ms,
            wall,
            charged_us: AtomicU64::new(0),
            token: CancelToken::new(),
        }))
    }

    /// An unbounded deadline (still cancellable via its token).
    pub fn none() -> Self {
        Self::build(None, false)
    }

    /// A deadline of `budget_ms` counting both wall-clock elapsed time
    /// and charged virtual time.
    pub fn within_ms(budget_ms: u64) -> Self {
        Self::build(Some(budget_ms), true)
    }

    /// A deadline of `budget_ms` counting *only* charged virtual time —
    /// expiry is then a pure function of the seeded execution schedule,
    /// independent of host speed and scheduling.
    pub fn virtual_only(budget_ms: u64) -> Self {
        Self::build(Some(budget_ms), false)
    }

    /// The budget, if bounded.
    pub fn budget_ms(&self) -> Option<u64> {
        self.0.budget_ms
    }

    /// Adds `ms` of virtual time (e.g. a backoff delay that was charged
    /// rather than slept). Negative or non-finite charges are ignored.
    /// Charges are quantized to whole microseconds.
    pub fn charge_ms(&self, ms: f64) {
        if ms.is_finite() && ms > 0.0 {
            self.charge_us((ms * 1000.0) as u64);
        }
    }

    /// Adds `us` microseconds of virtual time.
    pub fn charge_us(&self, us: u64) {
        self.0.charged_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Elapsed time counted against the budget, in milliseconds:
    /// charged virtual time, plus wall-clock time for wall deadlines.
    pub fn elapsed_ms(&self) -> u64 {
        let charged = self.0.charged_us.load(Ordering::Relaxed) / 1000;
        let wall = if self.0.wall {
            self.0.start.elapsed().as_millis() as u64
        } else {
            0
        };
        charged + wall
    }

    /// Budget left, in milliseconds. `None` when unbounded; saturates
    /// at 0 once expired.
    pub fn remaining_ms(&self) -> Option<u64> {
        self.0
            .budget_ms
            .map(|b| b.saturating_sub(self.elapsed_ms()))
    }

    /// Budget left at sub-millisecond precision — what backoff clamping
    /// uses, so fractional charges can never sum past the budget.
    pub fn remaining_ms_f64(&self) -> Option<f64> {
        self.0.budget_ms.map(|b| {
            let charged = self.0.charged_us.load(Ordering::Relaxed) as f64 / 1000.0;
            let wall = if self.0.wall {
                self.0.start.elapsed().as_secs_f64() * 1000.0
            } else {
                0.0
            };
            (b as f64 - charged - wall).max(0.0)
        })
    }

    /// An earliest-deadline-first sort key in microseconds: smaller
    /// means more urgent. Unbounded deadlines sort last (`u64::MAX`).
    ///
    /// Wall deadlines map to their absolute expiry instant on a
    /// process-wide axis (creation time + budget − already-charged
    /// virtual time), so two requests admitted at different moments
    /// compare by *when they will actually expire*, not by raw budget
    /// size. Virtual-only deadlines have no meaningful wall anchor;
    /// their key is the remaining virtual budget, which is a pure
    /// function of the schedule and keeps replay-mode EDF
    /// deterministic.
    pub fn edf_key_us(&self) -> u64 {
        let Some(budget_ms) = self.0.budget_ms else {
            return u64::MAX;
        };
        let budget_us = budget_ms.saturating_mul(1000);
        let charged_us = self.0.charged_us.load(Ordering::Relaxed);
        if self.0.wall {
            let created_us = self
                .0
                .start
                .saturating_duration_since(process_epoch())
                .as_micros() as u64;
            created_us
                .saturating_add(budget_us)
                .saturating_sub(charged_us)
        } else {
            budget_us.saturating_sub(charged_us)
        }
    }

    /// Whether the budget has been used up (never true when unbounded).
    pub fn expired(&self) -> bool {
        self.remaining_ms() == Some(0) && self.0.budget_ms.is_some()
    }

    /// Raises the cancellation flag on every clone of this deadline.
    pub fn cancel(&self) {
        self.0.token.cancel();
    }

    /// Whether the cancellation flag has been raised.
    pub fn cancelled(&self) -> bool {
        self.0.token.is_cancelled()
    }

    /// A handle to the shared cancellation flag.
    pub fn token(&self) -> CancelToken {
        self.0.token.clone()
    }

    /// The cooperative check: `Err(Cancelled)` if the flag is raised,
    /// `Err(DeadlineExceeded)` if the budget is used up, `Ok` otherwise.
    /// Layers call this at their yield points and stop early on `Err`.
    pub fn check(&self) -> Result<(), ExecError> {
        if self.cancelled() {
            return Err(ExecError::Cancelled);
        }
        if let Some(budget_ms) = self.0.budget_ms {
            let elapsed_ms = self.elapsed_ms();
            if elapsed_ms >= budget_ms {
                return Err(ExecError::DeadlineExceeded {
                    elapsed_ms,
                    budget_ms,
                });
            }
        }
        Ok(())
    }
}

/// The in-band wire form of a [`Deadline`]: the total budget plus the
/// time already counted against it on the sending side. Carrying both
/// (rather than a pre-subtracted remainder) keeps the receiving side's
/// `DeadlineExceeded { elapsed_ms, budget_ms }` errors meaningful
/// end-to-end — the numbers a downstream shard reports refer to the
/// *request's* budget, not to whatever slice of it crossed the hop.
///
/// `budget_ms = None` encodes as `u64::MAX` (no real budget gets there:
/// it would overflow every clamp long before). Encode/decode is exact —
/// 16 little-endian bytes, no lossy unit conversion.
///
/// # Examples
///
/// ```
/// use machine::{Deadline, WireDeadline};
///
/// let upstream = Deadline::virtual_only(100);
/// upstream.charge_ms(30.0);
/// let wire = WireDeadline::capture(&upstream);
/// let bytes = wire.encode();
/// let downstream = WireDeadline::decode(&bytes).unwrap().rebuild(true);
/// assert_eq!(downstream.budget_ms(), Some(100));
/// assert_eq!(downstream.remaining_ms(), Some(70));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireDeadline {
    /// Total budget in milliseconds; `None` means unbounded.
    pub budget_ms: Option<u64>,
    /// Time already counted against the budget upstream, in ms.
    pub elapsed_ms: u64,
}

/// Sentinel for an unbounded budget on the wire.
const WIRE_UNBOUNDED: u64 = u64::MAX;

/// Exact size of the encoded form, in bytes.
pub const WIRE_DEADLINE_BYTES: usize = 16;

impl WireDeadline {
    /// An unbounded deadline (nothing charged).
    pub fn unbounded() -> Self {
        WireDeadline {
            budget_ms: None,
            elapsed_ms: 0,
        }
    }

    /// A fresh bounded budget with nothing charged yet — what a client
    /// that never built a local [`Deadline`] sends.
    pub fn fresh(budget_ms: Option<u64>) -> Self {
        WireDeadline {
            budget_ms,
            elapsed_ms: 0,
        }
    }

    /// Snapshot a live deadline for the wire: its budget and whatever
    /// wall/virtual time it has already consumed.
    pub fn capture(deadline: &Deadline) -> Self {
        WireDeadline {
            budget_ms: deadline.budget_ms(),
            elapsed_ms: deadline.elapsed_ms(),
        }
    }

    /// Budget left after the upstream spend, saturating at 0. `None`
    /// when unbounded.
    pub fn remaining_ms(&self) -> Option<u64> {
        self.budget_ms.map(|b| b.saturating_sub(self.elapsed_ms))
    }

    /// Whether the budget was already gone when it was captured.
    pub fn expired(&self) -> bool {
        self.remaining_ms() == Some(0)
    }

    /// Rebuild a live deadline on the receiving side: same total budget,
    /// with the sender's elapsed time pre-charged, so every upstream hop
    /// shrinks the downstream budget. `virtual_only` selects the
    /// receiving clock ([`Deadline::virtual_only`] vs
    /// [`Deadline::within_ms`]).
    pub fn rebuild(&self, virtual_only: bool) -> Deadline {
        let d = match (self.budget_ms, virtual_only) {
            (None, _) => Deadline::none(),
            (Some(b), true) => Deadline::virtual_only(b),
            (Some(b), false) => Deadline::within_ms(b),
        };
        if self.budget_ms.is_some() && self.elapsed_ms > 0 {
            d.charge_us(self.elapsed_ms * 1000);
        }
        d
    }

    /// Encode as 16 little-endian bytes: budget (`u64::MAX` =
    /// unbounded) then elapsed.
    pub fn encode(&self) -> [u8; WIRE_DEADLINE_BYTES] {
        let mut out = [0u8; WIRE_DEADLINE_BYTES];
        out[..8].copy_from_slice(&self.budget_ms.unwrap_or(WIRE_UNBOUNDED).to_le_bytes());
        out[8..].copy_from_slice(&self.elapsed_ms.to_le_bytes());
        out
    }

    /// Decode the 16-byte form; `None` if `bytes` is the wrong length.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != WIRE_DEADLINE_BYTES {
            return None;
        }
        let budget = u64::from_le_bytes(bytes[..8].try_into().ok()?);
        let elapsed = u64::from_le_bytes(bytes[8..].try_into().ok()?);
        Some(WireDeadline {
            budget_ms: (budget != WIRE_UNBOUNDED).then_some(budget),
            elapsed_ms: elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_deadline_never_expires() {
        let d = Deadline::none();
        d.charge_ms(1e12);
        assert!(!d.expired());
        assert!(d.check().is_ok());
        assert_eq!(d.remaining_ms(), None);
    }

    #[test]
    fn virtual_deadline_expires_exactly_on_charged_time() {
        let d = Deadline::virtual_only(100);
        d.charge_ms(99.0);
        assert!(d.check().is_ok());
        assert_eq!(d.remaining_ms(), Some(1));
        d.charge_ms(1.0);
        assert!(d.expired());
        let err = d.check().unwrap_err();
        assert_eq!(
            err,
            ExecError::DeadlineExceeded {
                elapsed_ms: 100,
                budget_ms: 100
            }
        );
        assert!(!err.is_transient());
    }

    #[test]
    fn zero_budget_is_born_expired() {
        let d = Deadline::virtual_only(0);
        assert!(d.expired());
        assert!(matches!(
            d.check(),
            Err(ExecError::DeadlineExceeded {
                elapsed_ms: 0,
                budget_ms: 0
            })
        ));
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let d = Deadline::within_ms(1_000_000);
        let clone = d.clone();
        let token = d.token();
        assert!(clone.check().is_ok());
        token.cancel();
        assert!(d.cancelled() && clone.cancelled());
        assert_eq!(clone.check(), Err(ExecError::Cancelled));
    }

    #[test]
    fn charges_are_shared_across_clones() {
        let d = Deadline::virtual_only(10);
        let clone = d.clone();
        clone.charge_ms(10.0);
        assert!(d.expired());
    }

    #[test]
    fn negative_and_nan_charges_are_ignored() {
        let d = Deadline::virtual_only(10);
        d.charge_ms(-5.0);
        d.charge_ms(f64::NAN);
        assert_eq!(d.elapsed_ms(), 0);
    }

    #[test]
    fn wall_deadline_counts_real_time() {
        let d = Deadline::within_ms(1);
        std::thread::sleep(std::time::Duration::from_millis(3));
        assert!(d.expired());
    }

    #[test]
    fn edf_key_orders_tighter_budgets_first() {
        let tight = Deadline::virtual_only(50);
        let loose = Deadline::virtual_only(5_000);
        let unbounded = Deadline::none();
        assert!(tight.edf_key_us() < loose.edf_key_us());
        assert!(loose.edf_key_us() < unbounded.edf_key_us());
        assert_eq!(unbounded.edf_key_us(), u64::MAX);
        // Wall deadlines land on the same absolute axis: one created now
        // with a tight budget beats one created now with a loose budget.
        let wall_tight = Deadline::within_ms(50);
        let wall_loose = Deadline::within_ms(5_000);
        assert!(wall_tight.edf_key_us() < wall_loose.edf_key_us());
    }

    #[test]
    fn edf_key_is_schedule_pure_for_virtual_deadlines() {
        let d = Deadline::virtual_only(100);
        assert_eq!(d.edf_key_us(), 100_000);
        d.charge_ms(40.0);
        assert_eq!(d.edf_key_us(), 60_000);
        d.charge_ms(100.0);
        assert_eq!(d.edf_key_us(), 0);
    }

    #[test]
    fn wire_deadline_round_trips_exactly() {
        for wd in [
            WireDeadline::unbounded(),
            WireDeadline::fresh(Some(250)),
            WireDeadline {
                budget_ms: Some(100),
                elapsed_ms: 37,
            },
            WireDeadline {
                budget_ms: Some(5),
                elapsed_ms: 5_000,
            },
            WireDeadline {
                budget_ms: None,
                elapsed_ms: 123,
            },
        ] {
            let back = WireDeadline::decode(&wd.encode()).unwrap();
            assert_eq!(back, wd);
        }
        assert!(WireDeadline::decode(&[0u8; 15]).is_none());
        assert!(WireDeadline::decode(&[0u8; 17]).is_none());
    }

    #[test]
    fn wire_deadline_propagates_upstream_spend() {
        let upstream = Deadline::virtual_only(100);
        upstream.charge_ms(40.0);
        let wire = WireDeadline::capture(&upstream);
        assert_eq!(wire.remaining_ms(), Some(60));
        let downstream = wire.rebuild(true);
        assert_eq!(downstream.budget_ms(), Some(100));
        assert_eq!(downstream.remaining_ms(), Some(60));
        // Spending the rest downstream reports against the original budget.
        downstream.charge_ms(60.0);
        assert!(matches!(
            downstream.check(),
            Err(ExecError::DeadlineExceeded {
                elapsed_ms: 100,
                budget_ms: 100
            })
        ));
    }

    #[test]
    fn wire_deadline_born_expired_stays_expired() {
        let wire = WireDeadline {
            budget_ms: Some(10),
            elapsed_ms: 10,
        };
        assert!(wire.expired());
        assert!(wire.rebuild(true).expired());
    }
}
