//! Compiled execution plans, engine routing and the plan cache.
//!
//! Executing a [`TimedCircuit`](transpiler::TimedCircuit) requires a
//! *compilation* step before any trajectory runs: find the active qubits,
//! compact them into dense simulator indices, extract the crosstalk
//! episodes every spectator sees from the schedule's two-qubit activity,
//! decide whether the fast terminal-measurement sampling path applies —
//! and, since the simulator-routing refactor, pick the engine
//! ([`SimEngine`](crate::engine::SimEngine)) and lower the event stream
//! into that engine's op list. None of that depends on seeds, shots or
//! trajectories — only on the circuit structure, the device calibration
//! and the noise toggles — yet the executor used to redo it for every
//! execution.
//!
//! That matters because ADAPT's search hot loop executes *structurally
//! identical* circuits over and over: every mask evaluation of a
//! neighborhood runs the same decoy with different DD pulses, and the
//! same decoy+mask circuit recurs across retries, referee runs and
//! repeated experiments. This module gives that work a first-class home:
//!
//! - [`CompiledPlan`]: the immutable output of compilation, including the
//!   lowered per-engine op stream. Dense lowering fuses consecutive
//!   one-qubit gates into single matrices (diagonal gates additionally
//!   fuse *across* Pauli channels, which are invariant under diagonal
//!   conjugation because the floor has `px == py` and gate errors
//!   depolarize uniformly) and classifies each kernel as
//!   diagonal/anti-diagonal/full so the SoA simulator can use its cheap
//!   specialized paths.
//! - [`structural_hash`]: a cheap, collision-resistant fingerprint of a
//!   timed circuit covering the *full* event stream (kinds, gate
//!   parameters, operands, timestamps). The full stream is deliberate:
//!   DD pulses can activate a previously idle wire and can break the
//!   terminal-measurement property, so any "summary" key would wrongly
//!   share plans between masks.
//! - [`routing_key`]: the cache key — the structural hash mixed with the
//!   noise-toggle fingerprint and the *selected engine*. Keying the
//!   engine in means a noise-model edit that flips a circuit's routing
//!   eligibility changes the key, so a cached plan can never be replayed
//!   on the wrong engine.
//! - [`PlanCache`]: a small LRU keyed by [`routing_key`], shared by all
//!   clones of a [`Machine`](crate::Machine), with hit/miss counters so
//!   cache effectiveness is observable.

use crate::engine::{
    lower_clifford1, lower_clifford2, select_engine, CliffGate1, CliffGate2, EnginePolicy,
    SimEngine,
};
use crate::executor::{ExecError, NoiseToggles};
use crate::noise::PauliFloor;
use device::Device;
use qcirc::math::{Mat2, Mat4};
use qcirc::{Gate, OpKind};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use transpiler::TimedCircuit;

/// Default number of plans a [`PlanCache`] retains.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// Off-diagonal magnitudes below this classify a matrix as (anti)diagonal.
const KERNEL_CLASS_TOL: f64 = 1e-12;

/// An accumulated idle window on one compact qubit, with everything the
/// trajectory runner needs precomputed: which stochastic processes are
/// enabled, the crosstalk overlap weights, and the Pauli floor.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct IdleOp {
    /// Compact qubit index.
    pub q: u16,
    /// Window length in nanoseconds.
    pub dt_ns: f64,
    /// Whether the coherent detuning process advances over this window.
    pub detune: bool,
    /// `(episode index into the trajectory's jitter table, chi·overlap/1000)`
    /// for every crosstalk episode intersecting this window.
    pub xtalk: Vec<(u32, f64)>,
    /// Stochastic T1/white-dephasing floor over the window, when enabled.
    pub floor: Option<PauliFloor>,
}

/// A one-qubit unitary after fusion, classified for the SoA fast paths.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Kernel1 {
    /// General 2×2 unitary.
    Full(Mat2),
    /// Diagonal: `diag(d0, d1)`.
    Diag(qcirc::math::C64, qcirc::math::C64),
    /// Anti-diagonal: `[[0, a01], [a10, 0]]`.
    AntiDiag(qcirc::math::C64, qcirc::math::C64),
}

/// A two-qubit unitary classified for the SoA fast paths.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Kernel2 {
    /// General 4×4 unitary (boxed: the named fast paths dominate, and an
    /// inline matrix would quadruple the size of every plan op).
    Full(Box<Mat4>),
    /// Controlled-X (first operand is the control).
    Cx,
    /// Controlled-Z.
    Cz,
    /// Swap.
    Swap,
}

/// One step of the dense-engine op stream.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum DenseOp {
    /// Idle-noise window.
    Idle(IdleOp),
    /// Fused/classified one-qubit unitary.
    K1 { q: u16, k: Kernel1 },
    /// Classified two-qubit unitary.
    K2 { a: u16, b: u16, k: Kernel2 },
    /// Depolarizing one-qubit gate-error channel.
    Err1 { q: u16, p: f64 },
    /// Depolarizing two-qubit gate-error channel (`reps` = 3 for Swap).
    Err2 { a: u16, b: u16, p: f64, reps: u8 },
    /// Stochastic floor over a gate's duration.
    Floor { q: u16, floor: PauliFloor },
    /// Mid-circuit measurement into clbit `c` with readout-flip prob.
    Measure { q: u16, c: u16, p_flip: f64 },
    /// Qubit reset.
    Reset { q: u16 },
}

/// One step of the CHP-engine op stream. Mirrors [`DenseOp`] with gates
/// lowered to tableau Cliffords; the runner adds the toggling-frame
/// phase twirl on top (see [`crate::engine`]).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CliffOp {
    /// Idle-noise window.
    Idle(IdleOp),
    /// One-qubit Clifford.
    G1 { q: u16, g: CliffGate1 },
    /// Two-qubit Clifford.
    G2 { a: u16, b: u16, g: CliffGate2 },
    /// Depolarizing one-qubit gate-error channel.
    Err1 { q: u16, p: f64 },
    /// Depolarizing two-qubit gate-error channel.
    Err2 { a: u16, b: u16, p: f64, reps: u8 },
    /// Stochastic floor over a gate's duration.
    Floor { q: u16, floor: PauliFloor },
    /// Mid-circuit measurement.
    Measure { q: u16, c: u16, p_flip: f64 },
    /// Qubit reset.
    Reset { q: u16 },
}

/// The seed/shot-independent part of an execution, computed once per
/// (circuit structure, noise toggles, engine policy): qubit compaction,
/// crosstalk episodes, terminal-measurement classification, the selected
/// engine and its lowered op stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPlan {
    /// Physical qubit → compact simulator index (None when inactive).
    pub compact_of: Vec<Option<usize>>,
    /// Compact simulator index → physical qubit.
    pub phys_of: Vec<u32>,
    /// Per compact qubit: `(start_ns, end_ns, chi rad/µs)` crosstalk
    /// episodes from concurrently firing two-qubit gates.
    pub xtalk: Vec<Vec<(f64, f64, f64)>>,
    /// Whether the fast measurement-terminated sampling path applies
    /// (no gate/reset follows a measurement on the same qubit).
    pub terminal_measurements: bool,
    /// The engine this plan is lowered for. Baked into [`routing_key`],
    /// so a cached plan can never run on the other engine.
    pub engine: SimEngine,
    /// Classical register width (for `Counts`).
    pub(crate) num_clbits: usize,
    /// Deferred terminal measurements: `(compact qubit, clbit, p_flip)`.
    pub(crate) deferred: Vec<(u16, u16, f64)>,
    /// Whether trajectories sample per-qubit detunings.
    pub(crate) needs_detuning: bool,
    /// Whether trajectories sample per-episode crosstalk jitter.
    pub(crate) needs_jitter: bool,
    /// Dense-engine op stream (empty when routed to CHP).
    pub(crate) dense: Vec<DenseOp>,
    /// CHP-engine op stream (empty when routed dense).
    pub(crate) cliff: Vec<CliffOp>,
}

/// Engine-neutral lowering step; specialized into [`DenseOp`] or
/// [`CliffOp`] after engine selection.
enum Step {
    Idle(IdleOp),
    Gate1 { q: u16, g: Gate },
    Gate2 { a: u16, b: u16, g: Gate },
    Err1 { q: u16, p: f64 },
    Err2 { a: u16, b: u16, p: f64, reps: u8 },
    Floor { q: u16, floor: PauliFloor },
    Measure { q: u16, c: u16, p_flip: f64 },
    Reset { q: u16 },
}

impl CompiledPlan {
    /// Compiles a timed circuit against a device under the given noise
    /// toggles and routing policy: active-set compaction, crosstalk
    /// episode extraction, terminal-measurement analysis, engine
    /// selection and op-stream lowering.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::TooManyActiveQubits`] when the circuit
    /// touches more qubits than the simulators support. The cap applies
    /// uniformly to both engines: routing must never change which
    /// circuits are accepted.
    pub fn build(
        timed: &TimedCircuit,
        device: &Device,
        toggles: &NoiseToggles,
        policy: EnginePolicy,
    ) -> Result<CompiledPlan, ExecError> {
        let n_phys = timed.num_qubits();
        let mut active = vec![false; n_phys];
        for e in timed.events() {
            if !matches!(e.instr.kind, OpKind::Delay(_) | OpKind::Barrier) {
                for q in &e.instr.qubits {
                    active[q.index()] = true;
                }
            }
        }
        let phys_of: Vec<u32> = active
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| i as u32)
            .collect();
        if phys_of.len() > statevec::MAX_QUBITS {
            return Err(ExecError::TooManyActiveQubits {
                active: phys_of.len(),
                limit: statevec::MAX_QUBITS,
            });
        }
        let mut compact_of = vec![None; n_phys];
        for (c, &p) in phys_of.iter().enumerate() {
            compact_of[p as usize] = Some(c);
        }

        // Crosstalk episodes per active qubit.
        let topo = device.topology();
        let cal = device.calibration();
        let mut xtalk = vec![Vec::new(); phys_of.len()];
        for (start, end, a, b) in timed.two_qubit_activity() {
            let Some(link) = topo.link_between(a, b) else {
                continue; // uncoupled 2q gates carry no spectator crosstalk
            };
            for (ci, &p) in phys_of.iter().enumerate() {
                let chi = cal.crosstalk(p, link);
                if chi != 0.0 {
                    xtalk[ci].push((start, end, chi));
                }
            }
        }

        let engine = select_engine(timed, toggles, policy);
        let mut plan = CompiledPlan {
            compact_of,
            phys_of,
            xtalk,
            terminal_measurements: is_terminal_measured(timed),
            engine,
            num_clbits: timed.num_clbits(),
            deferred: Vec::new(),
            needs_detuning: toggles.idle_coherent,
            needs_jitter: toggles.idle_crosstalk,
            dense: Vec::new(),
            cliff: Vec::new(),
        };
        let steps = plan.lower_steps(timed, device, toggles);
        match engine {
            SimEngine::StateVector => plan.dense = lower_dense(steps),
            SimEngine::Chp => plan.cliff = lower_cliff(steps),
        }
        Ok(plan)
    }

    /// Walks the event stream once, maintaining each qubit's frame time,
    /// and emits engine-neutral steps. All timing is structural, so the
    /// entire walk happens at compile time; trajectories just replay the
    /// step list.
    fn lower_steps(
        &mut self,
        timed: &TimedCircuit,
        device: &Device,
        toggles: &NoiseToggles,
    ) -> Vec<Step> {
        let cal = device.calibration();
        let mut frame = vec![0.0f64; self.phys_of.len()];
        let mut steps = Vec::new();

        let emit_idle = |steps: &mut Vec<Step>,
                         frame: &mut [f64],
                         xtalk: &[Vec<(f64, f64, f64)>],
                         q: usize,
                         phys: u32,
                         until: f64| {
            let dt = until - frame[q];
            if dt <= 1e-9 {
                frame[q] = frame[q].max(until);
                return;
            }
            let t0 = frame[q];
            let mut overlaps = Vec::new();
            if toggles.idle_crosstalk {
                // Crosstalk from CNOTs active during [t0, until]; the
                // per-trajectory jitter factor is applied at run time by
                // episode index.
                for (ei, &(s, e, chi)) in xtalk[q].iter().enumerate() {
                    let overlap = (e.min(until) - s.max(t0)).max(0.0);
                    if overlap > 0.0 {
                        overlaps.push((ei as u32, chi * overlap / 1000.0));
                    }
                }
            }
            let floor = if toggles.idle_floor {
                Some(PauliFloor::for_idle(cal.qubit(phys), dt))
            } else {
                None
            };
            if toggles.idle_coherent || floor.is_some() || !overlaps.is_empty() {
                steps.push(Step::Idle(IdleOp {
                    q: q as u16,
                    dt_ns: dt,
                    detune: toggles.idle_coherent,
                    xtalk: overlaps,
                    floor,
                }));
            }
            frame[q] = until;
        };

        for e in timed.events() {
            match &e.instr.kind {
                OpKind::Gate(g) => {
                    let qs: Vec<usize> = e
                        .instr
                        .qubits
                        .iter()
                        .map(|q| self.compact_of[q.index()].expect("active qubit"))
                        .collect();
                    for &q in &qs {
                        emit_idle(
                            &mut steps,
                            &mut frame,
                            &self.xtalk,
                            q,
                            self.phys_of[q],
                            e.start_ns,
                        );
                    }
                    match qs.len() {
                        1 => {
                            let q = qs[0];
                            let phys = self.phys_of[q];
                            steps.push(Step::Gate1 { q: q as u16, g: *g });
                            let dur = device.gate_duration(*g, &[phys]);
                            if dur > 0.0 && toggles.gate_err {
                                steps.push(Step::Err1 {
                                    q: q as u16,
                                    p: cal.qubit(phys).err_1q,
                                });
                            }
                        }
                        2 => {
                            let (a, b) = (qs[0], qs[1]);
                            steps.push(Step::Gate2 {
                                a: a as u16,
                                b: b as u16,
                                g: *g,
                            });
                            if toggles.gate_err {
                                let p = device
                                    .cnot_error(self.phys_of[a], self.phys_of[b])
                                    .unwrap_or(device.profile().cnot_err_mean);
                                // SWAP = 3 CNOTs worth of error opportunities.
                                let reps = if matches!(g, Gate::Swap) { 3 } else { 1 };
                                steps.push(Step::Err2 {
                                    a: a as u16,
                                    b: b as u16,
                                    p,
                                    reps,
                                });
                            }
                        }
                        _ => unreachable!("gates are one- or two-qubit"),
                    }
                    // Decoherence does not pause during gates: the T1/white
                    // floor also applies over the gate duration (otherwise
                    // dense DD trains would artificially shield qubits from
                    // relaxation).
                    let dur = e.end_ns - e.start_ns;
                    if dur > 0.0 && toggles.idle_floor {
                        for &q in &qs {
                            steps.push(Step::Floor {
                                q: q as u16,
                                floor: PauliFloor::for_idle(cal.qubit(self.phys_of[q]), dur),
                            });
                        }
                    }
                    for &q in &qs {
                        frame[q] = e.end_ns;
                    }
                }
                OpKind::Measure(c) => {
                    let q = self.compact_of[e.instr.qubits[0].index()].expect("active qubit");
                    emit_idle(
                        &mut steps,
                        &mut frame,
                        &self.xtalk,
                        q,
                        self.phys_of[q],
                        e.start_ns,
                    );
                    frame[q] = e.end_ns;
                    let p_flip = if toggles.readout_err {
                        cal.qubit(self.phys_of[q]).err_readout
                    } else {
                        0.0
                    };
                    if self.terminal_measurements {
                        self.deferred.push((q as u16, c.index() as u16, p_flip));
                    } else {
                        steps.push(Step::Measure {
                            q: q as u16,
                            c: c.index() as u16,
                            p_flip,
                        });
                    }
                }
                OpKind::Reset => {
                    let q = self.compact_of[e.instr.qubits[0].index()].expect("active qubit");
                    emit_idle(
                        &mut steps,
                        &mut frame,
                        &self.xtalk,
                        q,
                        self.phys_of[q],
                        e.start_ns,
                    );
                    steps.push(Step::Reset { q: q as u16 });
                    frame[q] = e.end_ns;
                }
                OpKind::Delay(_) | OpKind::Barrier => {}
            }
        }
        steps
    }

    /// Number of active (simulated) qubits.
    pub fn active_qubits(&self) -> usize {
        self.phys_of.len()
    }
}

/// Fusion bookkeeping: what has happened on a qubit since its last
/// fusible one-qubit unitary.
#[derive(Clone, Copy, PartialEq)]
enum FuseState {
    /// Nothing — any unitary may fuse onto the slot.
    Clean,
    /// Only Pauli channels / diagonal idle phases — a *diagonal* unitary
    /// may still fuse backward across them (diagonal conjugation leaves
    /// the uniform-XY and depolarizing channels invariant, and commutes
    /// exactly with the idle `RZ`).
    PauliOnly,
}

fn is_diagonal(m: &Mat2) -> bool {
    m.at(0, 1).norm_sqr() < KERNEL_CLASS_TOL * KERNEL_CLASS_TOL
        && m.at(1, 0).norm_sqr() < KERNEL_CLASS_TOL * KERNEL_CLASS_TOL
}

fn is_antidiagonal(m: &Mat2) -> bool {
    m.at(0, 0).norm_sqr() < KERNEL_CLASS_TOL * KERNEL_CLASS_TOL
        && m.at(1, 1).norm_sqr() < KERNEL_CLASS_TOL * KERNEL_CLASS_TOL
}

fn classify1(m: Mat2) -> Kernel1 {
    if is_diagonal(&m) {
        Kernel1::Diag(m.at(0, 0), m.at(1, 1))
    } else if is_antidiagonal(&m) {
        Kernel1::AntiDiag(m.at(0, 1), m.at(1, 0))
    } else {
        Kernel1::Full(m)
    }
}

/// Specializes neutral steps into the dense op stream, fusing runs of
/// one-qubit gates into single matrices and classifying each kernel.
fn lower_dense(steps: Vec<Step>) -> Vec<DenseOp> {
    // Working stream holds raw matrices; classification happens last so
    // fused products (e.g. RZ·SX·RZ → full 2×2) classify on their final
    // shape, not their parts.
    enum Work {
        Mat { q: u16, m: Mat2 },
        Done(DenseOp),
    }
    fn slot_of(q: u16, slots: &mut Vec<Option<(usize, FuseState)>>) -> usize {
        let q = q as usize;
        if q >= slots.len() {
            slots.resize(q + 1, None);
        }
        q
    }
    let mut work: Vec<Work> = Vec::new();
    // Per-qubit fusion slot: (index into `work`, state since that op).
    let mut slot: Vec<Option<(usize, FuseState)>> = Vec::new();
    for step in steps {
        match step {
            Step::Gate1 { q, g } => {
                let m = g.unitary1().expect("one-qubit gate has a 2x2 unitary");
                let qi = slot_of(q, &mut slot);
                let fused = match slot[qi] {
                    Some((idx, FuseState::Clean)) => {
                        if let Work::Mat { m: prev, .. } = &mut work[idx] {
                            *prev = m * *prev;
                            true
                        } else {
                            false
                        }
                    }
                    Some((idx, FuseState::PauliOnly)) if is_diagonal(&m) => {
                        if let Work::Mat { m: prev, .. } = &mut work[idx] {
                            *prev = m * *prev;
                            true
                        } else {
                            false
                        }
                    }
                    _ => false,
                };
                if !fused {
                    slot[qi] = Some((work.len(), FuseState::Clean));
                    work.push(Work::Mat { q, m });
                }
            }
            Step::Gate2 { a, b, g } => {
                let ai = slot_of(a, &mut slot);
                let bi = slot_of(b, &mut slot);
                slot[ai] = None;
                slot[bi] = None;
                let k = match g {
                    Gate::CX => Kernel2::Cx,
                    Gate::CZ => Kernel2::Cz,
                    Gate::Swap => Kernel2::Swap,
                    _ => Kernel2::Full(Box::new(
                        g.unitary2().expect("two-qubit gate has a 4x4 unitary"),
                    )),
                };
                work.push(Work::Done(DenseOp::K2 { a, b, k }));
            }
            Step::Idle(idle) => {
                // An idle window applies a diagonal RZ plus (possibly) a
                // Pauli floor: diagonal follow-ups may still fuse across.
                let qi = slot_of(idle.q, &mut slot);
                if let Some((idx, _)) = slot[qi] {
                    slot[qi] = Some((idx, FuseState::PauliOnly));
                }
                work.push(Work::Done(DenseOp::Idle(idle)));
            }
            Step::Err1 { q, p } => {
                let qi = slot_of(q, &mut slot);
                if let Some((idx, _)) = slot[qi] {
                    slot[qi] = Some((idx, FuseState::PauliOnly));
                }
                work.push(Work::Done(DenseOp::Err1 { q, p }));
            }
            Step::Err2 { a, b, p, reps } => {
                for q in [a, b] {
                    let qi = slot_of(q, &mut slot);
                    if let Some((idx, _)) = slot[qi] {
                        slot[qi] = Some((idx, FuseState::PauliOnly));
                    }
                }
                work.push(Work::Done(DenseOp::Err2 { a, b, p, reps }));
            }
            Step::Floor { q, floor } => {
                let qi = slot_of(q, &mut slot);
                if let Some((idx, _)) = slot[qi] {
                    slot[qi] = Some((idx, FuseState::PauliOnly));
                }
                work.push(Work::Done(DenseOp::Floor { q, floor }));
            }
            Step::Measure { q, c, p_flip } => {
                let qi = slot_of(q, &mut slot);
                slot[qi] = None;
                work.push(Work::Done(DenseOp::Measure { q, c, p_flip }));
            }
            Step::Reset { q } => {
                let qi = slot_of(q, &mut slot);
                slot[qi] = None;
                work.push(Work::Done(DenseOp::Reset { q }));
            }
        }
    }
    work.into_iter()
        .map(|w| match w {
            Work::Mat { q, m } => DenseOp::K1 { q, k: classify1(m) },
            Work::Done(op) => op,
        })
        .collect()
}

/// Specializes neutral steps into the CHP op stream. Gates are
/// guaranteed lowerable: engine selection already verified
/// [`crate::engine::clifford_lowerable`] on the same event stream.
fn lower_cliff(steps: Vec<Step>) -> Vec<CliffOp> {
    steps
        .into_iter()
        .map(|step| match step {
            Step::Idle(idle) => CliffOp::Idle(idle),
            Step::Gate1 { q, g } => CliffOp::G1 {
                q,
                g: lower_clifford1(g).expect("checked by clifford_lowerable"),
            },
            Step::Gate2 { a, b, g } => CliffOp::G2 {
                a,
                b,
                g: lower_clifford2(g).expect("checked by clifford_lowerable"),
            },
            Step::Err1 { q, p } => CliffOp::Err1 { q, p },
            Step::Err2 { a, b, p, reps } => CliffOp::Err2 { a, b, p, reps },
            Step::Floor { q, floor } => CliffOp::Floor { q, floor },
            Step::Measure { q, c, p_flip } => CliffOp::Measure { q, c, p_flip },
            Step::Reset { q } => CliffOp::Reset { q },
        })
        .collect()
}

/// True when no gate/reset follows a measurement on the same qubit.
fn is_terminal_measured(timed: &TimedCircuit) -> bool {
    let mut measured = vec![false; timed.num_qubits()];
    for e in timed.events() {
        match e.instr.kind {
            OpKind::Measure(_) => measured[e.instr.qubits[0].index()] = true,
            OpKind::Gate(_) | OpKind::Reset => {
                if e.instr.qubits.iter().any(|q| measured[q.index()]) {
                    return false;
                }
            }
            OpKind::Delay(_) | OpKind::Barrier => {}
        }
    }
    true
}

/// SplitMix64-style avalanche combiner for the structural hash.
struct StructuralHasher {
    state: u64,
}

impl StructuralHasher {
    fn new() -> Self {
        StructuralHasher {
            state: 0x5851_F42D_4C95_7F2D,
        }
    }

    fn mix(&mut self, v: u64) {
        let mut z = self.state ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = z ^ (z >> 31);
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

/// Fingerprints the complete structure of a timed circuit: register
/// sizes plus, for every event, its kind, gate (with exact parameter
/// bits), operands and start/end timestamps (exact `f64` bits).
///
/// Two circuits with equal hashes are — up to the negligible 64-bit
/// collision probability — structurally identical, so they compile to
/// the same [`CompiledPlan`] on a given device. The hash deliberately
/// covers events that do *not* affect the plan (e.g. exact rotation
/// angles): over-keying only costs spurious misses, while under-keying
/// would silently execute the wrong plan.
pub fn structural_hash(timed: &TimedCircuit) -> u64 {
    let mut h = StructuralHasher::new();
    h.mix(timed.num_qubits() as u64);
    h.mix(timed.num_clbits() as u64);
    for e in timed.events() {
        match &e.instr.kind {
            OpKind::Gate(g) => {
                h.mix(1);
                mix_gate(&mut h, g);
            }
            OpKind::Measure(c) => {
                h.mix(2);
                h.mix(c.index() as u64);
            }
            OpKind::Reset => h.mix(3),
            OpKind::Delay(ns) => {
                h.mix(4);
                h.mix(ns.to_bits());
            }
            OpKind::Barrier => h.mix(5),
        }
        h.mix(e.instr.qubits.len() as u64);
        for q in &e.instr.qubits {
            h.mix(q.index() as u64);
        }
        h.mix(e.start_ns.to_bits());
        h.mix(e.end_ns.to_bits());
    }
    h.finish()
}

fn mix_gate(h: &mut StructuralHasher, g: &Gate) {
    // The mnemonic is unique per variant; parameterized variants also
    // mix their exact angle bits.
    let mut word = 0u64;
    for b in g.name().bytes() {
        word = word << 8 | b as u64;
    }
    h.mix(word);
    match g {
        Gate::RX(a) | Gate::RY(a) | Gate::RZ(a) | Gate::P(a) => h.mix(a.to_bits()),
        Gate::U(a, b, c) => {
            h.mix(a.to_bits());
            h.mix(b.to_bits());
            h.mix(c.to_bits());
        }
        _ => {}
    }
}

fn toggles_fingerprint(t: &NoiseToggles) -> u64 {
    (t.gate_err as u64)
        | (t.readout_err as u64) << 1
        | (t.idle_coherent as u64) << 2
        | (t.idle_crosstalk as u64) << 3
        | (t.idle_floor as u64) << 4
        | (t.coherent_twirl as u64) << 5
}

/// The plan-cache key: [`structural_hash`] mixed with the noise-toggle
/// fingerprint and the engine the circuit routes to under `policy`.
///
/// Keying the toggles in is required because lowering now bakes channel
/// probabilities into the op stream; keying the *engine* in is the
/// routing-determinism contract — a noise-model edit that flips a
/// circuit's CHP eligibility (e.g. disabling
/// [`NoiseToggles::coherent_twirl`] while coherent idling is on) changes
/// the key, so stale cached plans can never cross engines.
pub fn routing_key(timed: &TimedCircuit, toggles: &NoiseToggles, policy: EnginePolicy) -> u64 {
    let mut h = StructuralHasher::new();
    h.mix(structural_hash(timed));
    h.mix(toggles_fingerprint(toggles));
    h.mix(match select_engine(timed, toggles, policy) {
        SimEngine::StateVector => 1,
        SimEngine::Chp => 2,
    });
    h.finish()
}

/// Cache effectiveness counters, observable via
/// [`PlanCache::stats`] / [`Machine::plan_cache_stats`](crate::Machine::plan_cache_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Plans evicted to respect the capacity bound.
    pub evictions: u64,
    /// Plans currently resident.
    pub len: usize,
    /// Maximum resident plans.
    pub capacity: usize,
}

impl PlanCacheStats {
    /// Hit fraction of all lookups (1.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct CacheInner {
    /// routing key → (plan, last-use stamp).
    map: HashMap<u64, (Arc<CompiledPlan>, u64)>,
    /// Monotonic use counter backing the LRU policy.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A thread-safe LRU cache of [`CompiledPlan`]s keyed by
/// [`routing_key`].
///
/// Capacity is small (default [`DEFAULT_PLAN_CACHE_CAPACITY`]) because
/// the working set is small: a search touches one decoy circuit times a
/// handful of DD masks per neighborhood. Eviction scans for the least
/// recently used entry — O(capacity), trivial at this size.
///
/// Compilation *failures* are never cached: an oversized circuit errors
/// on every lookup, exactly as it did without the cache.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl PlanCache {
    /// Creates a cache retaining at most `capacity` plans (min 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Returns the plan for `timed` under the given noise toggles and
    /// routing policy, compiling (and caching) on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`CompiledPlan::build`] failures; errors are not
    /// cached.
    pub fn get_or_build(
        &self,
        timed: &TimedCircuit,
        device: &Device,
        toggles: &NoiseToggles,
        policy: EnginePolicy,
    ) -> Result<Arc<CompiledPlan>, ExecError> {
        let m = crate::metrics::metrics();
        let key = routing_key(timed, toggles, policy);
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((plan, stamp)) = inner.map.get_mut(&key) {
                *stamp = tick;
                let plan = Arc::clone(plan);
                inner.hits += 1;
                m.plan_hits.inc();
                return Ok(plan);
            }
            inner.misses += 1;
            m.plan_misses.inc();
        }
        // Compile outside the lock: concurrent batch workers missing on
        // different circuits must not serialize on each other's compiles.
        let plan = Arc::new(CompiledPlan::build(timed, device, toggles, policy)?);
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(&lru) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k)
            {
                inner.map.remove(&lru);
                inner.evictions += 1;
                m.plan_evictions.inc();
            }
        }
        inner.map.insert(key, (Arc::clone(&plan), tick));
        Ok(plan)
    }

    /// The cache map and counters are always internally consistent (no
    /// invariants span a panic point), so recover from poisoning instead
    /// of cascading a worker panic into every later execution.
    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current counters.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.lock();
        PlanCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }

    /// Drops every cached plan and resets the counters.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.tick = 0;
        inner.hits = 0;
        inner.misses = 0;
        inner.evictions = 0;
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::Circuit;
    use transpiler::{try_schedule, SchedulePolicy};

    fn timed_of(c: &Circuit, dev: &Device) -> TimedCircuit {
        try_schedule(c, dev, SchedulePolicy::Alap).unwrap()
    }

    fn build_default(timed: &TimedCircuit, dev: &Device) -> CompiledPlan {
        CompiledPlan::build(timed, dev, &NoiseToggles::default(), EnginePolicy::Auto).unwrap()
    }

    #[test]
    fn structural_hash_is_stable_and_sensitive() {
        let dev = Device::ibmq_rome(3);
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1).measure_all();
        let ta = timed_of(&a, &dev);
        assert_eq!(structural_hash(&ta), structural_hash(&ta.clone()));

        // A different gate on the same wires at the same times hashes
        // differently.
        let mut b = Circuit::new(2);
        b.x(0).cx(0, 1).measure_all();
        let tb = timed_of(&b, &dev);
        assert_ne!(structural_hash(&ta), structural_hash(&tb));

        // Rotation parameter changes are structural too.
        let mut r1 = Circuit::new(1);
        r1.rx(0.5, 0).measure(0, 0);
        let mut r2 = Circuit::new(1);
        r2.rx(0.25, 0).measure(0, 0);
        assert_ne!(
            structural_hash(&timed_of(&r1, &dev)),
            structural_hash(&timed_of(&r2, &dev))
        );
    }

    #[test]
    fn hash_covers_register_sizes() {
        let t1 = TimedCircuit::from_events(3, 1, Vec::new());
        let t2 = TimedCircuit::from_events(4, 1, Vec::new());
        let t3 = TimedCircuit::from_events(3, 2, Vec::new());
        assert_ne!(structural_hash(&t1), structural_hash(&t2));
        assert_ne!(structural_hash(&t1), structural_hash(&t3));
    }

    #[test]
    fn plan_matches_legacy_compile_semantics() {
        let dev = Device::ibmq_toronto(4);
        let mut c = Circuit::new(27);
        c.h(12).cx(12, 13).measure(12, 0).measure(13, 1);
        let timed = timed_of(&c, &dev);
        let plan = build_default(&timed, &dev);
        assert_eq!(plan.active_qubits(), 2);
        assert_eq!(plan.phys_of, vec![12, 13]);
        assert_eq!(plan.compact_of[12], Some(0));
        assert_eq!(plan.compact_of[13], Some(1));
        assert_eq!(plan.compact_of[0], None);
        assert!(plan.terminal_measurements);
    }

    #[test]
    fn clifford_circuit_routes_to_chp_and_back() {
        let dev = Device::ibmq_rome(3);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let timed = timed_of(&c, &dev);
        let auto = build_default(&timed, &dev);
        assert_eq!(auto.engine, SimEngine::Chp);
        assert!(auto.dense.is_empty());
        assert!(!auto.cliff.is_empty());

        let forced = CompiledPlan::build(
            &timed,
            &dev,
            &NoiseToggles::default(),
            EnginePolicy::ForceStateVector,
        )
        .unwrap();
        assert_eq!(forced.engine, SimEngine::StateVector);
        assert!(!forced.dense.is_empty());
        assert!(forced.cliff.is_empty());

        // Non-Clifford circuits route dense even under Auto.
        let mut t = Circuit::new(1);
        t.h(0).t(0).measure(0, 0);
        let plan = build_default(&timed_of(&t, &dev), &dev);
        assert_eq!(plan.engine, SimEngine::StateVector);
    }

    #[test]
    fn dense_lowering_fuses_one_qubit_runs() {
        // RZ·SX·RZ chains at identical timestamps (the transpiler's
        // canonical 1q decomposition shape) must fuse to one kernel.
        let dev = Device::ibmq_rome(3);
        let mut c = Circuit::new(1);
        c.rz(0.3, 0).sx(0).rz(0.7, 0).measure(0, 0);
        let timed = timed_of(&c, &dev);
        let plan = CompiledPlan::build(
            &timed,
            &dev,
            &NoiseToggles::none(),
            EnginePolicy::ForceStateVector,
        )
        .unwrap();
        let k1s = plan
            .dense
            .iter()
            .filter(|op| matches!(op, DenseOp::K1 { .. }))
            .count();
        assert_eq!(
            k1s, 1,
            "RZ·SX·RZ must fuse into one kernel: {:?}",
            plan.dense
        );
    }

    #[test]
    fn diagonal_gates_fuse_across_pauli_channels() {
        // With gate errors on, SX is followed by an Err1 channel; the
        // trailing RZ (diagonal) must still fuse backward across it.
        let dev = Device::ibmq_rome(3);
        let mut c = Circuit::new(1);
        c.sx(0).rz(0.7, 0).measure(0, 0);
        let timed = timed_of(&c, &dev);
        let toggles = NoiseToggles {
            gate_err: true,
            ..NoiseToggles::none()
        };
        let plan =
            CompiledPlan::build(&timed, &dev, &toggles, EnginePolicy::ForceStateVector).unwrap();
        let k1s = plan
            .dense
            .iter()
            .filter(|op| matches!(op, DenseOp::K1 { .. }))
            .count();
        assert_eq!(k1s, 1, "diagonal must fuse across Err1: {:?}", plan.dense);
        // A non-diagonal follow-up must NOT fuse across the channel.
        let mut c2 = Circuit::new(1);
        c2.sx(0).sx(0).measure(0, 0);
        let plan2 = CompiledPlan::build(
            &timed_of(&c2, &dev),
            &dev,
            &toggles,
            EnginePolicy::ForceStateVector,
        )
        .unwrap();
        let k1s2 = plan2
            .dense
            .iter()
            .filter(|op| matches!(op, DenseOp::K1 { .. }))
            .count();
        assert_eq!(k1s2, 2, "SX must not cross Err1: {:?}", plan2.dense);
    }

    #[test]
    fn kernels_classify_into_fast_paths() {
        let dev = Device::ibmq_rome(3);
        let mut c = Circuit::new(2);
        c.rz(0.3, 0); // diagonal
        c.x(1); // anti-diagonal
        c.cx(0, 1);
        c.swap(0, 1);
        c.measure_all();
        let timed = timed_of(&c, &dev);
        let plan = CompiledPlan::build(
            &timed,
            &dev,
            &NoiseToggles::none(),
            EnginePolicy::ForceStateVector,
        )
        .unwrap();
        let mut saw = (false, false, false, false);
        for op in &plan.dense {
            match op {
                DenseOp::K1 {
                    k: Kernel1::Diag(..),
                    ..
                } => saw.0 = true,
                DenseOp::K1 {
                    k: Kernel1::AntiDiag(..),
                    ..
                } => saw.1 = true,
                DenseOp::K2 { k: Kernel2::Cx, .. } => saw.2 = true,
                DenseOp::K2 {
                    k: Kernel2::Swap, ..
                } => saw.3 = true,
                _ => {}
            }
        }
        assert_eq!(saw, (true, true, true, true), "{:?}", plan.dense);
    }

    #[test]
    fn routing_key_covers_engine_eligibility() {
        // Satellite: a noise-model edit that flips a circuit from CHP to
        // state-vector must change the cache key.
        let dev = Device::ibmq_rome(3);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let timed = timed_of(&c, &dev);
        let twirl_on = NoiseToggles::default();
        let twirl_off = NoiseToggles {
            coherent_twirl: false,
            ..NoiseToggles::default()
        };
        assert_eq!(
            select_engine(&timed, &twirl_on, EnginePolicy::Auto),
            SimEngine::Chp
        );
        assert_eq!(
            select_engine(&timed, &twirl_off, EnginePolicy::Auto),
            SimEngine::StateVector
        );
        assert_ne!(
            routing_key(&timed, &twirl_on, EnginePolicy::Auto),
            routing_key(&timed, &twirl_off, EnginePolicy::Auto),
            "eligibility flip must change the plan-cache key"
        );
        // Policy is part of the key too (same toggles, different engine).
        assert_ne!(
            routing_key(&timed, &twirl_on, EnginePolicy::Auto),
            routing_key(&timed, &twirl_on, EnginePolicy::ForceStateVector),
        );
    }

    #[test]
    fn cache_separates_flipped_eligibility() {
        let dev = Device::ibmq_rome(3);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let timed = timed_of(&c, &dev);
        let cache = PlanCache::default();
        let twirl_off = NoiseToggles {
            coherent_twirl: false,
            ..NoiseToggles::default()
        };
        let a = cache
            .get_or_build(&timed, &dev, &NoiseToggles::default(), EnginePolicy::Auto)
            .unwrap();
        let b = cache
            .get_or_build(&timed, &dev, &twirl_off, EnginePolicy::Auto)
            .unwrap();
        assert_eq!(a.engine, SimEngine::Chp);
        assert_eq!(b.engine, SimEngine::StateVector);
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "flipped eligibility must not share plans");
        assert_eq!(stats.len, 2);
    }

    #[test]
    fn oversized_circuit_is_rejected_and_not_cached() {
        let dev = Device::all_to_all(27, 1);
        let mut c = Circuit::new(27);
        for q in 0..27 {
            c.h(q as u32);
        }
        c.measure_all();
        let timed = timed_of(&c, &dev);
        let cache = PlanCache::new(4);
        for _ in 0..2 {
            let err = cache
                .get_or_build(&timed, &dev, &NoiseToggles::default(), EnginePolicy::Auto)
                .unwrap_err();
            assert!(matches!(err, ExecError::TooManyActiveQubits { .. }));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "failures must not be cached");
        assert_eq!(stats.len, 0);
    }

    #[test]
    fn cache_hits_on_identical_structure() {
        let dev = Device::ibmq_rome(3);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let timed = timed_of(&c, &dev);
        let cache = PlanCache::default();
        let t = NoiseToggles::default();
        let a = cache
            .get_or_build(&timed, &dev, &t, EnginePolicy::Auto)
            .unwrap();
        let b = cache
            .get_or_build(&timed.clone(), &dev, &t, EnginePolicy::Auto)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let dev = Device::ibmq_rome(3);
        let circuits: Vec<TimedCircuit> = (1..=3)
            .map(|k| {
                let mut c = Circuit::new(2);
                for _ in 0..k {
                    c.x(0);
                }
                c.measure_all();
                timed_of(&c, &dev)
            })
            .collect();
        let cache = PlanCache::new(2);
        let t = NoiseToggles::default();
        let p = EnginePolicy::Auto;
        cache.get_or_build(&circuits[0], &dev, &t, p).unwrap(); // {0}
        cache.get_or_build(&circuits[1], &dev, &t, p).unwrap(); // {0,1}
        cache.get_or_build(&circuits[0], &dev, &t, p).unwrap(); // touch 0
        cache.get_or_build(&circuits[2], &dev, &t, p).unwrap(); // evicts 1
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.len, 2);
        // 0 survived (hit), 1 was evicted (miss again).
        cache.get_or_build(&circuits[0], &dev, &t, p).unwrap();
        cache.get_or_build(&circuits[1], &dev, &t, p).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 4);
    }

    #[test]
    fn clear_resets_everything() {
        let dev = Device::ibmq_rome(3);
        let mut c = Circuit::new(1);
        c.h(0).measure(0, 0);
        let timed = timed_of(&c, &dev);
        let cache = PlanCache::default();
        cache
            .get_or_build(&timed, &dev, &NoiseToggles::default(), EnginePolicy::Auto)
            .unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!(
            stats,
            PlanCacheStats {
                capacity: DEFAULT_PLAN_CACHE_CAPACITY,
                ..Default::default()
            }
        );
    }
}
