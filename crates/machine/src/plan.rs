//! Compiled execution plans and the plan cache.
//!
//! Executing a [`TimedCircuit`](transpiler::TimedCircuit) requires a
//! *compilation* step before any trajectory runs: find the active qubits,
//! compact them into dense simulator indices, extract the crosstalk
//! episodes every spectator sees from the schedule's two-qubit activity,
//! and decide whether the fast terminal-measurement sampling path
//! applies. None of that depends on seeds, shots or trajectories — only
//! on the circuit structure and the device calibration — yet the executor
//! used to redo it for every execution.
//!
//! That matters because ADAPT's search hot loop executes *structurally
//! identical* circuits over and over: every mask evaluation of a
//! neighborhood runs the same decoy with different DD pulses, and the
//! same decoy+mask circuit recurs across retries, referee runs and
//! repeated experiments. This module gives that work a first-class home:
//!
//! - [`CompiledPlan`]: the immutable output of compilation.
//! - [`structural_hash`]: a cheap, collision-resistant fingerprint of a
//!   timed circuit covering the *full* event stream (kinds, gate
//!   parameters, operands, timestamps). The full stream is deliberate:
//!   DD pulses can activate a previously idle wire and can break the
//!   terminal-measurement property, so any "summary" key would wrongly
//!   share plans between masks.
//! - [`PlanCache`]: a small LRU keyed by that hash, shared by all clones
//!   of a [`Machine`](crate::Machine), with hit/miss counters so cache
//!   effectiveness is observable.

use crate::executor::ExecError;
use device::Device;
use qcirc::{Gate, OpKind};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use transpiler::TimedCircuit;

/// Default number of plans a [`PlanCache`] retains.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// The seed/shot-independent part of an execution, computed once per
/// circuit structure: qubit compaction, crosstalk episodes and the
/// terminal-measurement classification.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPlan {
    /// Physical qubit → compact simulator index (None when inactive).
    pub compact_of: Vec<Option<usize>>,
    /// Compact simulator index → physical qubit.
    pub phys_of: Vec<u32>,
    /// Per compact qubit: `(start_ns, end_ns, chi rad/µs)` crosstalk
    /// episodes from concurrently firing two-qubit gates.
    pub xtalk: Vec<Vec<(f64, f64, f64)>>,
    /// Whether the fast measurement-terminated sampling path applies
    /// (no gate/reset follows a measurement on the same qubit).
    pub terminal_measurements: bool,
}

impl CompiledPlan {
    /// Compiles a timed circuit against a device: active-set compaction,
    /// crosstalk-episode extraction and terminal-measurement analysis.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::TooManyActiveQubits`] when the circuit
    /// touches more qubits than the dense simulator supports.
    pub fn build(timed: &TimedCircuit, device: &Device) -> Result<CompiledPlan, ExecError> {
        let n_phys = timed.num_qubits();
        let mut active = vec![false; n_phys];
        for e in timed.events() {
            if !matches!(e.instr.kind, OpKind::Delay(_) | OpKind::Barrier) {
                for q in &e.instr.qubits {
                    active[q.index()] = true;
                }
            }
        }
        let phys_of: Vec<u32> = active
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| i as u32)
            .collect();
        if phys_of.len() > statevec::MAX_QUBITS {
            return Err(ExecError::TooManyActiveQubits {
                active: phys_of.len(),
                limit: statevec::MAX_QUBITS,
            });
        }
        let mut compact_of = vec![None; n_phys];
        for (c, &p) in phys_of.iter().enumerate() {
            compact_of[p as usize] = Some(c);
        }

        // Crosstalk episodes per active qubit.
        let topo = device.topology();
        let cal = device.calibration();
        let mut xtalk = vec![Vec::new(); phys_of.len()];
        for (start, end, a, b) in timed.two_qubit_activity() {
            let Some(link) = topo.link_between(a, b) else {
                continue; // uncoupled 2q gates carry no spectator crosstalk
            };
            for (ci, &p) in phys_of.iter().enumerate() {
                let chi = cal.crosstalk(p, link);
                if chi != 0.0 {
                    xtalk[ci].push((start, end, chi));
                }
            }
        }

        Ok(CompiledPlan {
            compact_of,
            phys_of,
            xtalk,
            terminal_measurements: is_terminal_measured(timed),
        })
    }

    /// Number of active (simulated) qubits.
    pub fn active_qubits(&self) -> usize {
        self.phys_of.len()
    }
}

/// True when no gate/reset follows a measurement on the same qubit.
fn is_terminal_measured(timed: &TimedCircuit) -> bool {
    let mut measured = vec![false; timed.num_qubits()];
    for e in timed.events() {
        match e.instr.kind {
            OpKind::Measure(_) => measured[e.instr.qubits[0].index()] = true,
            OpKind::Gate(_) | OpKind::Reset => {
                if e.instr.qubits.iter().any(|q| measured[q.index()]) {
                    return false;
                }
            }
            OpKind::Delay(_) | OpKind::Barrier => {}
        }
    }
    true
}

/// SplitMix64-style avalanche combiner for the structural hash.
struct StructuralHasher {
    state: u64,
}

impl StructuralHasher {
    fn new() -> Self {
        StructuralHasher {
            state: 0x5851_F42D_4C95_7F2D,
        }
    }

    fn mix(&mut self, v: u64) {
        let mut z = self.state ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = z ^ (z >> 31);
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

/// Fingerprints the complete structure of a timed circuit: register
/// sizes plus, for every event, its kind, gate (with exact parameter
/// bits), operands and start/end timestamps (exact `f64` bits).
///
/// Two circuits with equal hashes are — up to the negligible 64-bit
/// collision probability — structurally identical, so they compile to
/// the same [`CompiledPlan`] on a given device. The hash deliberately
/// covers events that do *not* affect the plan (e.g. exact rotation
/// angles): over-keying only costs spurious misses, while under-keying
/// would silently execute the wrong plan.
pub fn structural_hash(timed: &TimedCircuit) -> u64 {
    let mut h = StructuralHasher::new();
    h.mix(timed.num_qubits() as u64);
    h.mix(timed.num_clbits() as u64);
    for e in timed.events() {
        match &e.instr.kind {
            OpKind::Gate(g) => {
                h.mix(1);
                mix_gate(&mut h, g);
            }
            OpKind::Measure(c) => {
                h.mix(2);
                h.mix(c.index() as u64);
            }
            OpKind::Reset => h.mix(3),
            OpKind::Delay(ns) => {
                h.mix(4);
                h.mix(ns.to_bits());
            }
            OpKind::Barrier => h.mix(5),
        }
        h.mix(e.instr.qubits.len() as u64);
        for q in &e.instr.qubits {
            h.mix(q.index() as u64);
        }
        h.mix(e.start_ns.to_bits());
        h.mix(e.end_ns.to_bits());
    }
    h.finish()
}

fn mix_gate(h: &mut StructuralHasher, g: &Gate) {
    // The mnemonic is unique per variant; parameterized variants also
    // mix their exact angle bits.
    let mut word = 0u64;
    for b in g.name().bytes() {
        word = word << 8 | b as u64;
    }
    h.mix(word);
    match g {
        Gate::RX(a) | Gate::RY(a) | Gate::RZ(a) | Gate::P(a) => h.mix(a.to_bits()),
        Gate::U(a, b, c) => {
            h.mix(a.to_bits());
            h.mix(b.to_bits());
            h.mix(c.to_bits());
        }
        _ => {}
    }
}

/// Cache effectiveness counters, observable via
/// [`PlanCache::stats`] / [`Machine::plan_cache_stats`](crate::Machine::plan_cache_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Plans evicted to respect the capacity bound.
    pub evictions: u64,
    /// Plans currently resident.
    pub len: usize,
    /// Maximum resident plans.
    pub capacity: usize,
}

impl PlanCacheStats {
    /// Hit fraction of all lookups (1.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct CacheInner {
    /// hash → (plan, last-use stamp).
    map: HashMap<u64, (Arc<CompiledPlan>, u64)>,
    /// Monotonic use counter backing the LRU policy.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A thread-safe LRU cache of [`CompiledPlan`]s keyed by
/// [`structural_hash`].
///
/// Capacity is small (default [`DEFAULT_PLAN_CACHE_CAPACITY`]) because
/// the working set is small: a search touches one decoy circuit times a
/// handful of DD masks per neighborhood. Eviction scans for the least
/// recently used entry — O(capacity), trivial at this size.
///
/// Compilation *failures* are never cached: an oversized circuit errors
/// on every lookup, exactly as it did without the cache.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl PlanCache {
    /// Creates a cache retaining at most `capacity` plans (min 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Returns the plan for `timed`, compiling (and caching) on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`CompiledPlan::build`] failures; errors are not
    /// cached.
    pub fn get_or_build(
        &self,
        timed: &TimedCircuit,
        device: &Device,
    ) -> Result<Arc<CompiledPlan>, ExecError> {
        let m = crate::metrics::metrics();
        let key = structural_hash(timed);
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((plan, stamp)) = inner.map.get_mut(&key) {
                *stamp = tick;
                let plan = Arc::clone(plan);
                inner.hits += 1;
                m.plan_hits.inc();
                return Ok(plan);
            }
            inner.misses += 1;
            m.plan_misses.inc();
        }
        // Compile outside the lock: concurrent batch workers missing on
        // different circuits must not serialize on each other's compiles.
        let plan = Arc::new(CompiledPlan::build(timed, device)?);
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(&lru) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k)
            {
                inner.map.remove(&lru);
                inner.evictions += 1;
                m.plan_evictions.inc();
            }
        }
        inner.map.insert(key, (Arc::clone(&plan), tick));
        Ok(plan)
    }

    /// The cache map and counters are always internally consistent (no
    /// invariants span a panic point), so recover from poisoning instead
    /// of cascading a worker panic into every later execution.
    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current counters.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.lock();
        PlanCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }

    /// Drops every cached plan and resets the counters.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.tick = 0;
        inner.hits = 0;
        inner.misses = 0;
        inner.evictions = 0;
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::Circuit;
    use transpiler::{try_schedule, SchedulePolicy};

    fn timed_of(c: &Circuit, dev: &Device) -> TimedCircuit {
        try_schedule(c, dev, SchedulePolicy::Alap).unwrap()
    }

    #[test]
    fn structural_hash_is_stable_and_sensitive() {
        let dev = Device::ibmq_rome(3);
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1).measure_all();
        let ta = timed_of(&a, &dev);
        assert_eq!(structural_hash(&ta), structural_hash(&ta.clone()));

        // A different gate on the same wires at the same times hashes
        // differently.
        let mut b = Circuit::new(2);
        b.x(0).cx(0, 1).measure_all();
        let tb = timed_of(&b, &dev);
        assert_ne!(structural_hash(&ta), structural_hash(&tb));

        // Rotation parameter changes are structural too.
        let mut r1 = Circuit::new(1);
        r1.rx(0.5, 0).measure(0, 0);
        let mut r2 = Circuit::new(1);
        r2.rx(0.25, 0).measure(0, 0);
        assert_ne!(
            structural_hash(&timed_of(&r1, &dev)),
            structural_hash(&timed_of(&r2, &dev))
        );
    }

    #[test]
    fn hash_covers_register_sizes() {
        let t1 = TimedCircuit::from_events(3, 1, Vec::new());
        let t2 = TimedCircuit::from_events(4, 1, Vec::new());
        let t3 = TimedCircuit::from_events(3, 2, Vec::new());
        assert_ne!(structural_hash(&t1), structural_hash(&t2));
        assert_ne!(structural_hash(&t1), structural_hash(&t3));
    }

    #[test]
    fn plan_matches_legacy_compile_semantics() {
        let dev = Device::ibmq_toronto(4);
        let mut c = Circuit::new(27);
        c.h(12).cx(12, 13).measure(12, 0).measure(13, 1);
        let timed = timed_of(&c, &dev);
        let plan = CompiledPlan::build(&timed, &dev).unwrap();
        assert_eq!(plan.active_qubits(), 2);
        assert_eq!(plan.phys_of, vec![12, 13]);
        assert_eq!(plan.compact_of[12], Some(0));
        assert_eq!(plan.compact_of[13], Some(1));
        assert_eq!(plan.compact_of[0], None);
        assert!(plan.terminal_measurements);
    }

    #[test]
    fn oversized_circuit_is_rejected_and_not_cached() {
        let dev = Device::all_to_all(27, 1);
        let mut c = Circuit::new(27);
        for q in 0..27 {
            c.h(q as u32);
        }
        c.measure_all();
        let timed = timed_of(&c, &dev);
        let cache = PlanCache::new(4);
        for _ in 0..2 {
            let err = cache.get_or_build(&timed, &dev).unwrap_err();
            assert!(matches!(err, ExecError::TooManyActiveQubits { .. }));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "failures must not be cached");
        assert_eq!(stats.len, 0);
    }

    #[test]
    fn cache_hits_on_identical_structure() {
        let dev = Device::ibmq_rome(3);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let timed = timed_of(&c, &dev);
        let cache = PlanCache::default();
        let a = cache.get_or_build(&timed, &dev).unwrap();
        let b = cache.get_or_build(&timed.clone(), &dev).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let dev = Device::ibmq_rome(3);
        let circuits: Vec<TimedCircuit> = (1..=3)
            .map(|k| {
                let mut c = Circuit::new(2);
                for _ in 0..k {
                    c.x(0);
                }
                c.measure_all();
                timed_of(&c, &dev)
            })
            .collect();
        let cache = PlanCache::new(2);
        cache.get_or_build(&circuits[0], &dev).unwrap(); // {0}
        cache.get_or_build(&circuits[1], &dev).unwrap(); // {0,1}
        cache.get_or_build(&circuits[0], &dev).unwrap(); // touch 0
        cache.get_or_build(&circuits[2], &dev).unwrap(); // evicts 1
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.len, 2);
        // 0 survived (hit), 1 was evicted (miss again).
        cache.get_or_build(&circuits[0], &dev).unwrap();
        cache.get_or_build(&circuits[1], &dev).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 4);
    }

    #[test]
    fn clear_resets_everything() {
        let dev = Device::ibmq_rome(3);
        let mut c = Circuit::new(1);
        c.h(0).measure(0, 0);
        let timed = timed_of(&c, &dev);
        let cache = PlanCache::default();
        cache.get_or_build(&timed, &dev).unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!(
            stats,
            PlanCacheStats {
                capacity: DEFAULT_PLAN_CACHE_CAPACITY,
                ..Default::default()
            }
        );
    }
}
