//! Integration tests for the simulator-routing layer: engine selection,
//! the routing-keyed plan cache, and the determinism contract across
//! both engines.

use device::Device;
use machine::{
    routing_key, Backend, EnginePolicy, ExecutionConfig, JobSpec, Machine, NoiseToggles, SimEngine,
};
use qcirc::Circuit;
use transpiler::{try_schedule, SchedulePolicy, TimedCircuit};

fn cfg(seed: u64) -> ExecutionConfig {
    ExecutionConfig {
        shots: 1024,
        trajectories: 16,
        seed,
        threads: 1,
    }
}

fn timed_of(c: &Circuit, dev: &Device) -> TimedCircuit {
    try_schedule(c, dev, SchedulePolicy::Alap).unwrap()
}

fn clifford_circuit() -> Circuit {
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).s(1).cx(1, 2).measure_all();
    c
}

fn non_clifford_circuit() -> Circuit {
    let mut c = Circuit::new(2);
    c.h(0).t(0).cx(0, 1).measure_all();
    c
}

#[test]
fn clifford_circuits_route_to_chp_under_auto() {
    let m = Machine::new(Device::ibmq_rome(5));
    m.execute(&clifford_circuit(), &cfg(1)).unwrap();
    let stats = m.engine_stats();
    assert_eq!(stats.chp_executions, 1, "{stats:?}");
    assert_eq!(stats.statevec_executions, 0, "{stats:?}");

    m.execute(&non_clifford_circuit(), &cfg(1)).unwrap();
    let stats = m.engine_stats();
    assert_eq!(stats.chp_executions, 1, "{stats:?}");
    assert_eq!(stats.statevec_executions, 1, "T gate must route dense");
}

#[test]
fn force_statevector_policy_overrides_routing() {
    let m = Machine::new(Device::ibmq_rome(5)).with_engine_policy(EnginePolicy::ForceStateVector);
    m.execute(&clifford_circuit(), &cfg(1)).unwrap();
    let stats = m.engine_stats();
    assert_eq!(stats.chp_executions, 0, "{stats:?}");
    assert_eq!(stats.statevec_executions, 1, "{stats:?}");
}

#[test]
fn noise_model_edit_flips_routing_and_cache_key() {
    // Satellite: disabling the coherent twirl while coherent idling is on
    // makes the noise non-Pauli-expressible — the same circuit must flip
    // from CHP to state-vector AND change its plan-cache key, so stale
    // cached plans can never cross engines.
    let dev = Device::ibmq_rome(5);
    let timed = timed_of(&clifford_circuit(), &dev);
    let twirl_on = NoiseToggles::default();
    let twirl_off = NoiseToggles {
        coherent_twirl: false,
        ..NoiseToggles::default()
    };
    assert_ne!(
        routing_key(&timed, &twirl_on, EnginePolicy::Auto),
        routing_key(&timed, &twirl_off, EnginePolicy::Auto),
    );

    let chp_machine = Machine::with_toggles(dev.clone(), twirl_on);
    let dense_machine = Machine::with_toggles(dev, twirl_off);
    chp_machine.execute_timed(&timed, &cfg(3)).unwrap();
    dense_machine.execute_timed(&timed, &cfg(3)).unwrap();
    assert_eq!(chp_machine.engine_stats().chp_executions, 1);
    assert_eq!(dense_machine.engine_stats().statevec_executions, 1);
}

#[test]
fn chp_results_are_deterministic_and_thread_invariant() {
    let m = Machine::new(Device::ibmq_rome(9));
    let c = clifford_circuit();
    let a = m.execute(&c, &cfg(7)).unwrap();
    let b = m.execute(&c, &cfg(7)).unwrap();
    assert_eq!(a, b, "same seed must be bit-identical");
    let mut cfg4 = cfg(7);
    cfg4.threads = 4;
    let d = m.execute(&c, &cfg4).unwrap();
    assert_eq!(a, d, "thread count must not affect results");
    let e = m.execute(&c, &cfg(8)).unwrap();
    assert_ne!(a, e, "different seeds must differ");
    assert!(m.engine_stats().chp_executions >= 4);
}

#[test]
fn engines_agree_exactly_when_noise_free() {
    // With every channel off both engines are exact simulators of the
    // same Clifford circuit, so their sampled distributions coincide up
    // to RNG stream differences; on a deterministic-outcome circuit the
    // counts must be exactly equal.
    let dev = Device::ibmq_rome(5);
    let mut c = Circuit::new(2);
    c.x(0).cx(0, 1).measure_all(); // deterministic outcome |11⟩
    let chp = Machine::with_toggles(dev.clone(), NoiseToggles::none());
    let dense = Machine::with_toggles(dev, NoiseToggles::none())
        .with_engine_policy(EnginePolicy::ForceStateVector);
    let a = chp.execute(&c, &cfg(5)).unwrap();
    let b = dense.execute(&c, &cfg(5)).unwrap();
    assert_eq!(chp.engine_stats().chp_executions, 1);
    assert_eq!(dense.engine_stats().statevec_executions, 1);
    assert_eq!(a.get(0b11), 1024);
    assert_eq!(a, b);
}

#[test]
fn batch_is_bit_identical_to_serial_on_both_engines() {
    // The execute_batch determinism contract, extended across routing: a
    // mixed batch (CHP-routed Clifford jobs + dense-routed T-gate jobs)
    // must produce bit-identical results however the thread budget is
    // split.
    let m = Machine::new(Device::ibmq_rome(9));
    let cliff = timed_of(&clifford_circuit(), m.device());
    let dense = timed_of(&non_clifford_circuit(), m.device());
    let mk = |timed: &TimedCircuit, seed: u64, threads: usize| -> ExecutionConfig {
        let _ = timed;
        ExecutionConfig {
            shots: 512,
            trajectories: 8,
            seed,
            threads,
        }
    };
    let serial: Vec<_> = [(&cliff, 1), (&dense, 2), (&cliff, 3), (&dense, 4)]
        .iter()
        .map(|&(t, s)| m.execute_timed(t, &mk(t, s, 1)).unwrap())
        .collect();
    let jobs: Vec<JobSpec<'_>> = [(&cliff, 1), (&dense, 2), (&cliff, 3), (&dense, 4)]
        .iter()
        .map(|&(t, s)| JobSpec {
            timed: t,
            config: mk(t, s, 4),
        })
        .collect();
    let batched = m.execute_batch(&jobs);
    for (i, (s, b)) in serial.iter().zip(batched.iter()).enumerate() {
        let b = b.as_ref().expect("job ok");
        assert_eq!(s, &b.counts, "job {i} must be bit-identical to serial");
    }
    let stats = m.engine_stats();
    assert!(stats.chp_executions > 0 && stats.statevec_executions > 0);
    assert!(stats.last_batch_workers >= 1);
    assert!(stats.last_batch_job_threads >= 1);
}

#[test]
fn batch_reports_actual_thread_layout() {
    // Satellite: the reported batch thread layout must reflect the real
    // split, not a hardcoded 1. With an explicit hint of 4 threads and 2
    // jobs, 2 workers run jobs concurrently and each job gets 2
    // trajectory threads.
    let m = Machine::new(Device::ibmq_rome(9));
    let cliff = timed_of(&clifford_circuit(), m.device());
    let jobs: Vec<JobSpec<'_>> = (0..2)
        .map(|i| JobSpec {
            timed: &cliff,
            config: ExecutionConfig {
                shots: 256,
                trajectories: 8,
                seed: i,
                threads: 4,
            },
        })
        .collect();
    let results = m.execute_batch(&jobs);
    assert!(results.iter().all(|r| r.is_ok()));
    let stats = m.engine_stats();
    assert_eq!(stats.last_batch_workers, 2, "{stats:?}");
    assert_eq!(stats.last_batch_job_threads, 2, "{stats:?}");
}

#[test]
fn oversized_circuits_rejected_identically_on_both_engines() {
    // The active-qubit cap applies before routing: a 27-qubit Clifford
    // circuit is rejected even though a tableau could hold it. Routing
    // must never change which circuits are accepted.
    let dev = Device::all_to_all(27, 1);
    for policy in [EnginePolicy::Auto, EnginePolicy::ForceStateVector] {
        let m = Machine::new(dev.clone()).with_engine_policy(policy);
        let mut c = Circuit::new(27);
        for q in 0..27 {
            c.h(q as u32);
        }
        c.measure_all();
        let err = m.execute(&c, &cfg(1)).unwrap_err();
        assert!(
            matches!(
                err,
                machine::ExecError::TooManyActiveQubits { active: 27, .. }
            ),
            "{policy:?}: {err:?}"
        );
    }
}

#[test]
fn engine_tags_are_stable() {
    // Benchmark reports and metrics key off these strings.
    assert_eq!(SimEngine::Chp.tag(), "chp");
    assert_eq!(SimEngine::StateVector.tag(), "statevector");
}
