//! Validates the Monte-Carlo trajectory executor against exact
//! density-matrix channel evolution: the stochastic machinery must
//! reproduce the closed-form channels in expectation.
//!
//! The four reference tests pin [`EnginePolicy::ForceStateVector`]: they
//! validate the *dense* trajectory machinery specifically, independent of
//! what the router would pick. The `chp_*` tests then run the same
//! channels under [`EnginePolicy::Auto`] and assert both that the CHP
//! engine was actually used and that its statistics match the exact
//! channel — the distribution-preservation contract of the
//! toggling-frame twirl.

use device::Device;
use machine::{EnginePolicy, ExecutionConfig, Machine, NoiseToggles};
use qcirc::{Circuit, Gate};
use statevec::DensityMatrix;

fn big_budget(seed: u64) -> ExecutionConfig {
    ExecutionConfig {
        shots: 40_000,
        trajectories: 4_000,
        seed,
        threads: 1,
    }
}

#[test]
fn quasi_static_dephasing_matches_gaussian_channel() {
    // Ramsey on one qubit with ONLY the coherent static detuning enabled:
    // the trajectory average must match the exact Gaussian-dephasing
    // channel p(0) = (1 + e^{−σ²/2})/2 with σ = static_sigma · T.
    let base = Device::ibmq_london(7);
    let dev = base.with_adjusted_qubits(|q| {
        q.ou_sigma = 1e-9; // isolate the static component
    });
    let sigma_rate = dev.qubit(0).static_sigma; // rad/µs
    let idle_us = 10.0;
    let machine = Machine::with_toggles(
        dev,
        NoiseToggles {
            gate_err: false,
            readout_err: false,
            idle_crosstalk: false,
            idle_floor: false,
            idle_coherent: true,
            coherent_twirl: true,
        },
    )
    .with_engine_policy(EnginePolicy::ForceStateVector);
    let mut c = Circuit::new(1);
    c.h(0);
    c.delay(idle_us * 1000.0, 0);
    c.h(0);
    c.measure(0, 0);
    let counts = machine.execute(&c, &big_budget(3)).expect("run");
    let p0 = counts.probability(0);

    let sigma = sigma_rate * idle_us;
    let mut dm = DensityMatrix::new(1).expect("1 qubit");
    dm.apply1(&Gate::H.unitary1().expect("1q"), 0).expect("H");
    dm.gaussian_z_phase(0, sigma).expect("channel");
    dm.apply1(&Gate::H.unitary1().expect("1q"), 0).expect("H");
    let exact = dm.probabilities()[0];

    assert!(
        (p0 - exact).abs() < 0.02,
        "trajectory {p0:.4} vs exact channel {exact:.4} (sigma {sigma:.3})"
    );
}

#[test]
fn gate_depolarizing_matches_exact_channel() {
    // A train of X pulses with gate error p: the executor samples a random
    // Pauli with probability p per pulse; the exact channel is
    // depolarize1(p) after each X.
    let base = Device::ibmq_london(7);
    let p_err = 0.02;
    let dev = base.with_adjusted_qubits(|q| q.err_1q = p_err);
    let machine = Machine::with_toggles(
        dev,
        NoiseToggles {
            gate_err: true,
            readout_err: false,
            idle_coherent: false,
            idle_crosstalk: false,
            idle_floor: false,
            coherent_twirl: true,
        },
    )
    .with_engine_policy(EnginePolicy::ForceStateVector);
    let pulses = 15;
    let mut c = Circuit::new(1);
    for _ in 0..pulses {
        c.x(0);
    }
    c.measure(0, 0);
    let counts = machine.execute(&c, &big_budget(11)).expect("run");
    let p1 = counts.probability(1); // odd pulse count → ideally |1⟩

    let mut dm = DensityMatrix::new(1).expect("1 qubit");
    let x = Gate::X.unitary1().expect("1q");
    for _ in 0..pulses {
        dm.apply1(&x, 0).expect("X");
        dm.depolarize1(0, p_err).expect("channel");
    }
    let exact = dm.probabilities()[1];

    assert!(
        (p1 - exact).abs() < 0.02,
        "trajectory {p1:.4} vs exact channel {exact:.4}"
    );
}

#[test]
fn readout_flips_match_exact_channel() {
    let base = Device::ibmq_london(7);
    let p_ro = 0.08;
    let dev = base.with_adjusted_qubits(|q| q.err_readout = p_ro);
    let machine = Machine::with_toggles(
        dev,
        NoiseToggles {
            gate_err: false,
            readout_err: true,
            idle_coherent: false,
            idle_crosstalk: false,
            idle_floor: false,
            coherent_twirl: true,
        },
    )
    .with_engine_policy(EnginePolicy::ForceStateVector);
    let mut c = Circuit::new(1);
    c.x(0);
    c.measure(0, 0);
    let counts = machine.execute(&c, &big_budget(13)).expect("run");

    let mut dm = DensityMatrix::new(1).expect("1 qubit");
    dm.apply1(&Gate::X.unitary1().expect("1q"), 0).expect("X");
    dm.readout_flip(0, p_ro).expect("channel");
    let exact = dm.probabilities()[1];
    assert!(
        (counts.probability(1) - exact).abs() < 0.01,
        "trajectory {} vs exact {exact}",
        counts.probability(1)
    );
}

#[test]
fn spin_echo_cancels_gaussian_channel_completely() {
    // With only static detuning, a single mid-window X echo restores the
    // state exactly (up to the second H): the trajectory result must beat
    // the no-echo Gaussian channel and approach the noise-free value.
    let base = Device::ibmq_london(23);
    let dev = base.with_adjusted_qubits(|q| {
        q.ou_sigma = 1e-9;
    });
    let sigma_rate = dev.qubit(0).static_sigma;
    let idle_us = 10.0;
    let machine = Machine::with_toggles(
        dev,
        NoiseToggles {
            gate_err: false,
            readout_err: false,
            idle_crosstalk: false,
            idle_floor: false,
            idle_coherent: true,
            coherent_twirl: true,
        },
    )
    .with_engine_policy(EnginePolicy::ForceStateVector);
    let mut c = Circuit::new(1);
    c.h(0);
    c.delay(idle_us * 500.0, 0);
    c.x(0);
    c.delay(idle_us * 500.0, 0);
    c.x(0);
    c.h(0);
    c.measure(0, 0);
    let counts = machine.execute(&c, &big_budget(17)).expect("run");
    let p0 = counts.probability(0);
    let no_echo = (1.0 + (-(sigma_rate * idle_us).powi(2) / 2.0).exp()) / 2.0;
    assert!(
        p0 > 0.999,
        "perfect echo expected under purely static noise: {p0}"
    );
    assert!(p0 > no_echo, "echo {p0} must beat free decay {no_echo}");
}

#[test]
fn chp_twirl_matches_gaussian_channel_in_distribution() {
    // The same Ramsey experiment routed to the CHP engine: the pending
    // phase θ flushes at the final H as a Z with p = sin²(θ/2), so the
    // trajectory average is E[(1+cos θ)/2] — identical to the exact
    // Gaussian-dephasing channel. Per-shot correlations differ from the
    // dense engine; the distribution must not.
    let base = Device::ibmq_london(7);
    let dev = base.with_adjusted_qubits(|q| {
        q.ou_sigma = 1e-9;
    });
    let sigma_rate = dev.qubit(0).static_sigma;
    let idle_us = 10.0;
    let machine = Machine::with_toggles(
        dev,
        NoiseToggles {
            gate_err: false,
            readout_err: false,
            idle_crosstalk: false,
            idle_floor: false,
            idle_coherent: true,
            coherent_twirl: true,
        },
    );
    let mut c = Circuit::new(1);
    c.h(0);
    c.delay(idle_us * 1000.0, 0);
    c.h(0);
    c.measure(0, 0);
    let counts = machine.execute(&c, &big_budget(29)).expect("run");
    let stats = machine.engine_stats();
    assert!(
        stats.chp_executions > 0 && stats.statevec_executions == 0,
        "Clifford Ramsey under twirl must route to CHP: {stats:?}"
    );
    let p0 = counts.probability(0);

    let sigma = sigma_rate * idle_us;
    let mut dm = DensityMatrix::new(1).expect("1 qubit");
    dm.apply1(&Gate::H.unitary1().expect("1q"), 0).expect("H");
    dm.gaussian_z_phase(0, sigma).expect("channel");
    dm.apply1(&Gate::H.unitary1().expect("1q"), 0).expect("H");
    let exact = dm.probabilities()[0];
    assert!(
        (p0 - exact).abs() < 0.02,
        "CHP twirl {p0:.4} vs exact channel {exact:.4}"
    );
}

#[test]
fn chp_echo_cancels_static_detuning_exactly() {
    // Echo physics on the stabilizer engine: X pulses negate the pending
    // phase in the toggling frame, so a symmetric echo leaves θ ≈ 0 at
    // the flush and the twirl (p = sin²(θ/2)) almost never fires.
    let base = Device::ibmq_london(23);
    let dev = base.with_adjusted_qubits(|q| {
        q.ou_sigma = 1e-9;
    });
    let idle_us = 10.0;
    let machine = Machine::with_toggles(
        dev,
        NoiseToggles {
            gate_err: false,
            readout_err: false,
            idle_crosstalk: false,
            idle_floor: false,
            idle_coherent: true,
            coherent_twirl: true,
        },
    );
    let mut c = Circuit::new(1);
    c.h(0);
    c.delay(idle_us * 500.0, 0);
    c.x(0);
    c.delay(idle_us * 500.0, 0);
    c.x(0);
    c.h(0);
    c.measure(0, 0);
    let counts = machine.execute(&c, &big_budget(31)).expect("run");
    let stats = machine.engine_stats();
    assert!(stats.chp_executions > 0, "must route to CHP: {stats:?}");
    let p0 = counts.probability(0);
    assert!(
        p0 > 0.999,
        "perfect echo expected on the CHP engine under static noise: {p0}"
    );
}

#[test]
fn chp_gate_depolarizing_matches_exact_channel() {
    // Pure Pauli noise on a Clifford circuit: the CHP path is exact, not
    // approximate — same tolerance as the dense reference test.
    let base = Device::ibmq_london(7);
    let p_err = 0.02;
    let dev = base.with_adjusted_qubits(|q| q.err_1q = p_err);
    let machine = Machine::with_toggles(
        dev,
        NoiseToggles {
            gate_err: true,
            readout_err: false,
            idle_coherent: false,
            idle_crosstalk: false,
            idle_floor: false,
            coherent_twirl: true,
        },
    );
    let pulses = 15;
    let mut c = Circuit::new(1);
    for _ in 0..pulses {
        c.x(0);
    }
    c.measure(0, 0);
    let counts = machine.execute(&c, &big_budget(37)).expect("run");
    let stats = machine.engine_stats();
    assert!(
        stats.chp_executions > 0 && stats.statevec_executions == 0,
        "X-train under Pauli noise must route to CHP: {stats:?}"
    );
    let p1 = counts.probability(1);

    let mut dm = DensityMatrix::new(1).expect("1 qubit");
    let x = Gate::X.unitary1().expect("1q");
    for _ in 0..pulses {
        dm.apply1(&x, 0).expect("X");
        dm.depolarize1(0, p_err).expect("channel");
    }
    let exact = dm.probabilities()[1];
    assert!(
        (p1 - exact).abs() < 0.02,
        "CHP trajectory {p1:.4} vs exact channel {exact:.4}"
    );
}
