//! # statevec — dense state-vector quantum simulator
//!
//! Exact simulation of pure states up to ~20 qubits. This crate is the
//! physical substrate of the reproduction: the noisy trajectory executor in
//! the `machine` crate drives a [`StateVector`] per Monte-Carlo trajectory,
//! and ideal (noise-free) reference outputs are produced by
//! [`run_ideal`]/[`ideal_distribution`].
//!
//! Qubit `k` is the `k`-th bit (little-endian) of the amplitude index.
//!
//! # Examples
//!
//! ```
//! use qcirc::Circuit;
//! use statevec::{ideal_distribution, StateVector};
//!
//! // Bell state: P(00) = P(11) = 1/2.
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1).measure_all();
//! let p = ideal_distribution(&c).unwrap();
//! assert!((p[&0b00] - 0.5).abs() < 1e-12);
//! assert!((p[&0b11] - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod density;
pub mod soa;

pub use density::DensityMatrix;
pub use soa::SoaStateVector;

use qcirc::math::{Mat2, Mat4, C64};
use qcirc::{Circuit, Counts, Instruction, OpKind, Qubit};
use rand::Rng;
use std::collections::BTreeMap;

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The requested register exceeds the compiled-in size limit.
    TooManyQubits {
        /// Requested register size.
        requested: usize,
        /// Hard limit (memory driven).
        limit: usize,
    },
    /// A qubit operand exceeds the register.
    QubitOutOfRange {
        /// Offending index.
        qubit: usize,
        /// Register size.
        num_qubits: usize,
    },
    /// The provided amplitude vector is not a power-of-two length or is not
    /// normalized.
    InvalidAmplitudes,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::TooManyQubits { requested, limit } => {
                write!(f, "{requested} qubits exceeds simulator limit of {limit}")
            }
            SimError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {num_qubits}-qubit register"
                )
            }
            SimError::InvalidAmplitudes => write!(f, "invalid amplitude vector"),
        }
    }
}

impl std::error::Error for SimError {}

/// Hard cap on register size (2^26 amplitudes = 1 GiB of `C64`).
pub const MAX_QUBITS: usize = 26;

/// A dense pure-state simulator over `n` qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// Creates the all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics when `n > MAX_QUBITS`; use [`StateVector::try_new`] to handle
    /// that case gracefully.
    pub fn new(n: usize) -> Self {
        Self::try_new(n).expect("register too large")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] when the register exceeds
    /// [`MAX_QUBITS`].
    pub fn try_new(n: usize) -> Result<Self, SimError> {
        if n > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: n,
                limit: MAX_QUBITS,
            });
        }
        let mut amps = vec![C64::ZERO; 1 << n];
        amps[0] = C64::ONE;
        Ok(StateVector { n, amps })
    }

    /// Builds a state from explicit amplitudes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidAmplitudes`] unless the length is a power
    /// of two and the vector has unit norm (tolerance 1e-6).
    pub fn from_amplitudes(amps: Vec<C64>) -> Result<Self, SimError> {
        if !amps.len().is_power_of_two() {
            return Err(SimError::InvalidAmplitudes);
        }
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        if (norm - 1.0).abs() > 1e-6 {
            return Err(SimError::InvalidAmplitudes);
        }
        let n = amps.len().trailing_zeros() as usize;
        Ok(StateVector { n, amps })
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The raw amplitudes, little-endian indexed.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Amplitude of a computational basis state.
    pub fn amplitude(&self, basis: u64) -> C64 {
        self.amps[basis as usize]
    }

    fn check_qubit(&self, q: usize) -> Result<(), SimError> {
        if q >= self.n {
            Err(SimError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.n,
            })
        } else {
            Ok(())
        }
    }

    /// Applies a single-qubit unitary to qubit `q`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn apply1(&mut self, u: &Mat2, q: usize) -> Result<(), SimError> {
        self.check_qubit(q)?;
        let stride = 1usize << q;
        let (u00, u01, u10, u11) = (u.at(0, 0), u.at(0, 1), u.at(1, 0), u.at(1, 1));
        let len = self.amps.len();
        let mut base = 0;
        while base < len {
            for lo in base..base + stride {
                let hi = lo + stride;
                let a0 = self.amps[lo];
                let a1 = self.amps[hi];
                self.amps[lo] = u00 * a0 + u01 * a1;
                self.amps[hi] = u10 * a0 + u11 * a1;
            }
            base += stride << 1;
        }
        Ok(())
    }

    /// Applies a two-qubit unitary; `q0` indexes the low bit of the 4×4
    /// basis (the convention of [`qcirc::Gate::unitary2`], where the first
    /// gate operand — e.g. the CX control — is the low bit).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `q0 == q1`.
    pub fn apply2(&mut self, u: &Mat4, q0: usize, q1: usize) -> Result<(), SimError> {
        self.check_qubit(q0)?;
        self.check_qubit(q1)?;
        debug_assert_ne!(q0, q1, "two-qubit gate needs distinct operands");
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        let len = self.amps.len();
        for idx in 0..len {
            // Process each group of 4 once, anchored at the index with both
            // bits clear.
            if idx & b0 != 0 || idx & b1 != 0 {
                continue;
            }
            let i00 = idx;
            let i01 = idx | b0; // q0 = 1
            let i10 = idx | b1; // q1 = 1
            let i11 = idx | b0 | b1;
            let v = [
                self.amps[i00],
                self.amps[i01],
                self.amps[i10],
                self.amps[i11],
            ];
            let w = u.mul_vec(v);
            self.amps[i00] = w[0];
            self.amps[i01] = w[1];
            self.amps[i10] = w[2];
            self.amps[i11] = w[3];
        }
        Ok(())
    }

    /// Probability that qubit `q` measures as 1.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn prob_one(&self, q: usize) -> Result<f64, SimError> {
        self.check_qubit(q)?;
        let bit = 1usize << q;
        Ok(self
            .amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum())
    }

    /// Projectively measures qubit `q`, collapsing the state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> Result<bool, SimError> {
        let p1 = self.prob_one(q)?;
        let outcome = rng.gen::<f64>() < p1;
        self.collapse(q, outcome)?;
        Ok(outcome)
    }

    /// Forces qubit `q` into the given outcome, renormalizing.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn collapse(&mut self, q: usize, outcome: bool) -> Result<(), SimError> {
        self.check_qubit(q)?;
        let bit = 1usize << q;
        let mut norm = 0.0;
        for (i, a) in self.amps.iter_mut().enumerate() {
            if ((i & bit) != 0) != outcome {
                *a = C64::ZERO;
            } else {
                norm += a.norm_sqr();
            }
        }
        if norm > 0.0 {
            let s = 1.0 / norm.sqrt();
            for a in &mut self.amps {
                *a = a.scale(s);
            }
        }
        Ok(())
    }

    /// Resets qubit `q` to `|0⟩` (measure + conditional X, as hardware does).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn reset<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> Result<(), SimError> {
        let outcome = self.measure(q, rng)?;
        if outcome {
            self.apply1(&qcirc::Gate::X.unitary1().expect("X is 1q"), q)?;
        }
        Ok(())
    }

    /// Samples a full-register computational-basis outcome *without*
    /// collapsing the state (independent shots from the same state).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return i as u64;
            }
        }
        (self.amps.len() - 1) as u64
    }

    /// The probability of each basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// `|⟨other|self⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics when register sizes differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n, other.n, "fidelity needs equal register sizes");
        let mut ip = C64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            ip += b.conj() * *a;
        }
        ip.norm_sqr()
    }

    /// ⟨Z⟩ on qubit `q`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn expectation_z(&self, q: usize) -> Result<f64, SimError> {
        Ok(1.0 - 2.0 * self.prob_one(q)?)
    }

    /// Renormalizes to unit norm (guards against floating-point drift in
    /// long trajectories).
    pub fn normalize(&mut self) {
        let norm: f64 = self.amps.iter().map(|a| a.norm_sqr()).sum();
        if norm > 0.0 {
            let s = 1.0 / norm.sqrt();
            for a in &mut self.amps {
                *a = a.scale(s);
            }
        }
    }

    /// Applies one circuit instruction. Measurements record into `clbits`
    /// (a little-endian bit accumulator); delays and barriers are ignored —
    /// noise-free evolution is trivial under idling.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for bad operands.
    pub fn apply_instruction<R: Rng + ?Sized>(
        &mut self,
        instr: &Instruction,
        clbits: &mut u64,
        rng: &mut R,
    ) -> Result<(), SimError> {
        match &instr.kind {
            OpKind::Gate(g) => {
                let qs: Vec<usize> = instr.qubits.iter().map(|q| Qubit::index(*q)).collect();
                if let Some(u) = g.unitary1() {
                    self.apply1(&u, qs[0])?;
                } else if let Some(u) = g.unitary2() {
                    self.apply2(&u, qs[0], qs[1])?;
                }
            }
            OpKind::Measure(c) => {
                let outcome = self.measure(instr.qubits[0].index(), rng)?;
                let bit = 1u64 << c.index();
                if outcome {
                    *clbits |= bit;
                } else {
                    *clbits &= !bit;
                }
            }
            OpKind::Reset => {
                self.reset(instr.qubits[0].index(), rng)?;
            }
            OpKind::Delay(_) | OpKind::Barrier => {}
        }
        Ok(())
    }
}

/// Runs a circuit noise-free from `|0…0⟩` and returns the pre-measurement
/// state (measurements and resets are skipped — use [`sample_counts`] for
/// sampled outcomes, or [`ideal_distribution`] for exact outcome
/// probabilities).
///
/// # Errors
///
/// Returns a [`SimError`] when the register is too large or an operand is
/// out of range.
pub fn run_ideal(circuit: &Circuit) -> Result<StateVector, SimError> {
    let mut sv = StateVector::try_new(circuit.num_qubits())?;
    for instr in circuit.iter() {
        if let OpKind::Gate(g) = &instr.kind {
            let qs: Vec<usize> = instr.qubits.iter().map(|q| q.index()).collect();
            if let Some(u) = g.unitary1() {
                sv.apply1(&u, qs[0])?;
            } else if let Some(u) = g.unitary2() {
                sv.apply2(&u, qs[0], qs[1])?;
            }
        }
    }
    Ok(sv)
}

/// Exact noise-free outcome distribution over the circuit's classical bits.
///
/// Only measured qubits contribute; a clbit never written stays 0. The
/// result maps little-endian clbit patterns to probabilities and omits
/// zero-probability outcomes (threshold 1e-15).
///
/// # Errors
///
/// Returns a [`SimError`] when the register is too large or an operand is
/// out of range.
pub fn ideal_distribution(circuit: &Circuit) -> Result<BTreeMap<u64, f64>, SimError> {
    let sv = run_ideal(circuit)?;
    // Map qubit -> clbit from the measurement instructions (last wins).
    let mut qubit_to_clbit: BTreeMap<usize, usize> = BTreeMap::new();
    for instr in circuit.iter() {
        if let OpKind::Measure(c) = &instr.kind {
            qubit_to_clbit.insert(instr.qubits[0].index(), c.index());
        }
    }
    let mut dist: BTreeMap<u64, f64> = BTreeMap::new();
    for (i, p) in sv.probabilities().into_iter().enumerate() {
        if p < 1e-15 {
            continue;
        }
        let mut outcome = 0u64;
        for (&q, &c) in &qubit_to_clbit {
            if i >> q & 1 == 1 {
                outcome |= 1 << c;
            }
        }
        *dist.entry(outcome).or_insert(0.0) += p;
    }
    Ok(dist)
}

/// Samples `shots` noise-free measurement outcomes of a circuit.
///
/// Mid-circuit measurements and resets are honored per shot (each shot
/// replays the circuit); for measurement-terminated circuits this matches
/// sampling from [`ideal_distribution`].
///
/// # Errors
///
/// Returns a [`SimError`] when the register is too large or an operand is
/// out of range.
pub fn sample_counts<R: Rng + ?Sized>(
    circuit: &Circuit,
    shots: u64,
    rng: &mut R,
) -> Result<Counts, SimError> {
    let has_collapse = circuit
        .iter()
        .any(|i| matches!(i.kind, OpKind::Measure(_) | OpKind::Reset));
    let mut counts = Counts::new(circuit.num_clbits());
    if !has_collapse {
        counts.record_many(0, shots);
        return Ok(counts);
    }
    // Fast path: all measurements are terminal (no gate follows any measure
    // on the same qubit, no resets). Then one state suffices and shots are
    // independent samples.
    if is_measurement_terminated(circuit) {
        let dist = ideal_distribution(circuit)?;
        let outcomes: Vec<u64> = dist.keys().copied().collect();
        let cdf: Vec<f64> = dist
            .values()
            .scan(0.0, |acc, p| {
                *acc += p;
                Some(*acc)
            })
            .collect();
        for _ in 0..shots {
            let r: f64 = rng.gen();
            let idx = cdf.partition_point(|&c| c < r).min(outcomes.len() - 1);
            counts.record(outcomes[idx]);
        }
        return Ok(counts);
    }
    for _ in 0..shots {
        let mut sv = StateVector::try_new(circuit.num_qubits())?;
        let mut clbits = 0u64;
        for instr in circuit.iter() {
            sv.apply_instruction(instr, &mut clbits, rng)?;
        }
        counts.record(clbits);
    }
    Ok(counts)
}

/// True when no gate/reset acts on a qubit after it has been measured — the
/// common benchmark shape, which admits fast independent-shot sampling.
pub fn is_measurement_terminated(circuit: &Circuit) -> bool {
    let mut measured = vec![false; circuit.num_qubits()];
    for instr in circuit.iter() {
        match instr.kind {
            OpKind::Measure(_) => measured[instr.qubits[0].index()] = true,
            OpKind::Gate(_) | OpKind::Reset => {
                if instr.qubits.iter().any(|q| measured[q.index()]) {
                    return false;
                }
            }
            OpKind::Delay(_) | OpKind::Barrier => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xADA9_7001)
    }

    #[test]
    fn initial_state_is_zero_ket() {
        let sv = StateVector::new(3);
        assert!(sv.amplitude(0).approx_eq(C64::ONE, 1e-12));
        for i in 1..8 {
            assert!(sv.amplitude(i).approx_eq(C64::ZERO, 1e-12));
        }
    }

    #[test]
    fn too_many_qubits_rejected() {
        assert!(matches!(
            StateVector::try_new(MAX_QUBITS + 1),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn x_flips_correct_qubit() {
        let mut sv = StateVector::new(3);
        sv.apply1(&Gate::X.unitary1().unwrap(), 1).unwrap();
        assert!(sv.amplitude(0b010).approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn hadamard_gives_uniform_superposition() {
        let mut sv = StateVector::new(2);
        sv.apply1(&Gate::H.unitary1().unwrap(), 0).unwrap();
        sv.apply1(&Gate::H.unitary1().unwrap(), 1).unwrap();
        for p in sv.probabilities() {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn cx_entangles_bell_state() {
        let mut sv = StateVector::new(2);
        sv.apply1(&Gate::H.unitary1().unwrap(), 0).unwrap();
        sv.apply2(&Gate::CX.unitary2().unwrap(), 0, 1).unwrap();
        let p = sv.probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-12);
        assert!((p[0b11] - 0.5).abs() < 1e-12);
        assert!(p[0b01] < 1e-12 && p[0b10] < 1e-12);
    }

    #[test]
    fn cx_respects_control_orientation() {
        // Control = qubit 1 (first operand maps to low bit of the unitary).
        let mut sv = StateVector::new(2);
        sv.apply1(&Gate::X.unitary1().unwrap(), 1).unwrap(); // |10⟩
        sv.apply2(&Gate::CX.unitary2().unwrap(), 1, 0).unwrap();
        // control q1=1 → target q0 flips → |11⟩
        assert!(sv.amplitude(0b11).approx_eq(C64::ONE, 1e-12));

        let mut sv = StateVector::new(2);
        sv.apply1(&Gate::X.unitary1().unwrap(), 0).unwrap(); // |01⟩
        sv.apply2(&Gate::CX.unitary2().unwrap(), 1, 0).unwrap();
        // control q1=0 → nothing happens
        assert!(sv.amplitude(0b01).approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut sv = StateVector::new(2);
        sv.apply1(&Gate::X.unitary1().unwrap(), 0).unwrap(); // |01⟩
        sv.apply2(&Gate::Swap.unitary2().unwrap(), 0, 1).unwrap();
        assert!(sv.amplitude(0b10).approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn nonadjacent_two_qubit_gate() {
        let mut sv = StateVector::new(4);
        sv.apply1(&Gate::X.unitary1().unwrap(), 0).unwrap();
        sv.apply2(&Gate::CX.unitary2().unwrap(), 0, 3).unwrap();
        assert!(sv.amplitude(0b1001).approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn measurement_collapses_and_is_consistent() {
        let mut r = rng();
        let mut ones = 0;
        for _ in 0..200 {
            let mut sv = StateVector::new(1);
            sv.apply1(&Gate::H.unitary1().unwrap(), 0).unwrap();
            let m1 = sv.measure(0, &mut r).unwrap();
            let m2 = sv.measure(0, &mut r).unwrap();
            assert_eq!(m1, m2, "repeated measurement must agree");
            ones += m1 as u32;
        }
        assert!((50..150).contains(&ones), "H should be ~50/50, got {ones}");
    }

    #[test]
    fn collapse_renormalizes() {
        let mut sv = StateVector::new(2);
        sv.apply1(&Gate::H.unitary1().unwrap(), 0).unwrap();
        sv.apply2(&Gate::CX.unitary2().unwrap(), 0, 1).unwrap();
        sv.collapse(0, true).unwrap();
        assert!(sv.amplitude(0b11).norm_sqr() > 1.0 - 1e-9);
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut r = rng();
        for _ in 0..20 {
            let mut sv = StateVector::new(1);
            sv.apply1(&Gate::H.unitary1().unwrap(), 0).unwrap();
            sv.reset(0, &mut r).unwrap();
            assert!((sv.prob_one(0).unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn sample_matches_distribution() {
        let mut sv = StateVector::new(2);
        sv.apply1(&Gate::H.unitary1().unwrap(), 0).unwrap();
        sv.apply2(&Gate::CX.unitary2().unwrap(), 0, 1).unwrap();
        let mut r = rng();
        let mut histo = [0u32; 4];
        for _ in 0..2000 {
            histo[sv.sample(&mut r) as usize] += 1;
        }
        assert_eq!(histo[1], 0);
        assert_eq!(histo[2], 0);
        assert!(histo[0] > 800 && histo[3] > 800);
    }

    #[test]
    fn fidelity_of_equal_and_orthogonal_states() {
        let a = StateVector::new(2);
        let mut b = StateVector::new(2);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        b.apply1(&Gate::X.unitary1().unwrap(), 0).unwrap();
        assert!(a.fidelity(&b) < 1e-12);
    }

    #[test]
    fn expectation_z_tracks_rotation() {
        let mut sv = StateVector::new(1);
        assert!((sv.expectation_z(0).unwrap() - 1.0).abs() < 1e-12);
        sv.apply1(&Gate::RY(std::f64::consts::PI / 3.0).unitary1().unwrap(), 0)
            .unwrap();
        // ⟨Z⟩ = cos(θ)
        assert!((sv.expectation_z(0).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ghz_ideal_distribution() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let d = ideal_distribution(&c).unwrap();
        assert_eq!(d.len(), 2);
        assert!((d[&0b000] - 0.5).abs() < 1e-12);
        assert!((d[&0b111] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn measurement_clbit_mapping_respected() {
        // Measure q0 into c1.
        let mut c = Circuit::with_clbits(2, 2);
        c.x(0).measure(0, 1);
        let d = ideal_distribution(&c).unwrap();
        assert!((d[&0b10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_counts_bell_statistics() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let counts = sample_counts(&c, 4000, &mut rng()).unwrap();
        assert_eq!(counts.total(), 4000);
        assert_eq!(counts.get(0b01), 0);
        assert_eq!(counts.get(0b10), 0);
        let p00 = counts.probability(0b00);
        assert!((p00 - 0.5).abs() < 0.05, "p00 = {p00}");
    }

    #[test]
    fn mid_circuit_measurement_slow_path() {
        // Measure then act: forces per-shot replay.
        let mut c = Circuit::new(1);
        c.h(0).measure(0, 0).x(0);
        assert!(!is_measurement_terminated(&c));
        let counts = sample_counts(&c, 500, &mut rng()).unwrap();
        assert_eq!(counts.total(), 500);
        // Outcome records the pre-X measurement: still ~50/50.
        assert!(counts.get(0) > 150 && counts.get(1) > 150);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let a = sample_counts(&c, 100, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = sample_counts(&c, 100, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_amplitudes_validation() {
        assert!(StateVector::from_amplitudes(vec![C64::ONE; 3]).is_err());
        assert!(StateVector::from_amplitudes(vec![C64::ONE, C64::ONE]).is_err());
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let sv = StateVector::from_amplitudes(vec![C64::real(s), C64::real(s)]).unwrap();
        assert_eq!(sv.num_qubits(), 1);
    }

    #[test]
    fn rz_phases_cancel_in_echo() {
        // The physics ADAPT relies on: RZ(φ) · X · RZ(φ) · X = identity up
        // to phase (spin echo). Verify on |+⟩.
        let h = Gate::H.unitary1().unwrap();
        let x = Gate::X.unitary1().unwrap();
        let rz = Gate::RZ(0.8).unitary1().unwrap();
        let mut sv = StateVector::new(1);
        sv.apply1(&h, 0).unwrap();
        let reference = sv.clone();
        sv.apply1(&rz, 0).unwrap();
        sv.apply1(&x, 0).unwrap();
        sv.apply1(&rz, 0).unwrap();
        sv.apply1(&x, 0).unwrap();
        assert!((sv.fidelity(&reference) - 1.0).abs() < 1e-10);
        // Without the echo, fidelity degrades.
        let mut free = reference.clone();
        free.apply1(&rz, 0).unwrap();
        free.apply1(&rz, 0).unwrap();
        assert!(free.fidelity(&reference) < 0.98);
    }
}
