//! Exact density-matrix simulation of small open systems.
//!
//! The trajectory executor in the `machine` crate approximates channel
//! evolution by Monte-Carlo sampling; this module computes the *exact*
//! mixed-state evolution for up to [`MAX_DM_QUBITS`] qubits, so the
//! stochastic machinery can be validated analytically:
//!
//! - depolarizing/dephasing/amplitude-damping Kraus channels match the
//!   executor's sampled Pauli errors in expectation;
//! - the Gaussian-averaged coherent `RZ` noise (`⟨RZ(φ)ρRZ(φ)†⟩` over
//!   `φ ~ N(0, σ²)`) has the closed form of off-diagonal decay
//!   `e^{−σ²/2}`, which is what a quasi-static detuning does to an idle
//!   qubit between DD pulses.

use crate::{SimError, StateVector};
use qcirc::math::{Mat2, C64};
use qcirc::Gate;

/// Hard cap on density-matrix register size (2^2n complex entries).
pub const MAX_DM_QUBITS: usize = 10;

/// A density matrix over `n ≤ MAX_DM_QUBITS` qubits, row-major,
/// little-endian basis indexing (matching [`StateVector`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n: usize,
    dim: usize,
    rho: Vec<C64>,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] beyond [`MAX_DM_QUBITS`].
    pub fn new(n: usize) -> Result<Self, SimError> {
        if n > MAX_DM_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: n,
                limit: MAX_DM_QUBITS,
            });
        }
        let dim = 1 << n;
        let mut rho = vec![C64::ZERO; dim * dim];
        rho[0] = C64::ONE;
        Ok(DensityMatrix { n, dim, rho })
    }

    /// Builds `|ψ⟩⟨ψ|` from a pure state.
    pub fn from_pure(sv: &StateVector) -> Result<Self, SimError> {
        let n = sv.num_qubits();
        if n > MAX_DM_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: n,
                limit: MAX_DM_QUBITS,
            });
        }
        let dim = 1 << n;
        let amps = sv.amplitudes();
        let mut rho = vec![C64::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                rho[r * dim + c] = amps[r] * amps[c].conj();
            }
        }
        Ok(DensityMatrix { n, dim, rho })
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Matrix element `⟨r|ρ|c⟩`.
    pub fn element(&self, r: usize, c: usize) -> C64 {
        self.rho[r * self.dim + c]
    }

    /// Trace (should stay 1 under any channel).
    pub fn trace(&self) -> C64 {
        (0..self.dim).fold(C64::ZERO, |acc, i| acc + self.rho[i * self.dim + i])
    }

    /// Purity `tr(ρ²)`: 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        let mut p = C64::ZERO;
        for r in 0..self.dim {
            for c in 0..self.dim {
                p += self.rho[r * self.dim + c] * self.rho[c * self.dim + r];
            }
        }
        p.re
    }

    /// Computational-basis outcome probabilities (the diagonal).
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim)
            .map(|i| self.rho[i * self.dim + i].re)
            .collect()
    }

    /// `⟨ψ|ρ|ψ⟩` against a pure reference.
    ///
    /// # Panics
    ///
    /// Panics on register-size mismatch.
    pub fn fidelity_pure(&self, sv: &StateVector) -> f64 {
        assert_eq!(self.n, sv.num_qubits(), "register size mismatch");
        let amps = sv.amplitudes();
        let mut f = C64::ZERO;
        for r in 0..self.dim {
            for c in 0..self.dim {
                f += amps[r].conj() * self.rho[r * self.dim + c] * amps[c];
            }
        }
        f.re
    }

    /// Applies `ρ ← U ρ U†` for a single-qubit unitary on qubit `q`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn apply1(&mut self, u: &Mat2, q: usize) -> Result<(), SimError> {
        self.check(q)?;
        let bit = 1usize << q;
        // Left: rows mix. For each column c, rows (r, r|bit) transform.
        for c in 0..self.dim {
            for r in 0..self.dim {
                if r & bit != 0 {
                    continue;
                }
                let lo = self.rho[r * self.dim + c];
                let hi = self.rho[(r | bit) * self.dim + c];
                self.rho[r * self.dim + c] = u.at(0, 0) * lo + u.at(0, 1) * hi;
                self.rho[(r | bit) * self.dim + c] = u.at(1, 0) * lo + u.at(1, 1) * hi;
            }
        }
        // Right: columns mix with U†.
        let ud = u.dagger();
        for r in 0..self.dim {
            for c in 0..self.dim {
                if c & bit != 0 {
                    continue;
                }
                let lo = self.rho[r * self.dim + c];
                let hi = self.rho[r * self.dim + (c | bit)];
                // ρ·U†: column update uses U† columns.
                self.rho[r * self.dim + c] = lo * ud.at(0, 0) + hi * ud.at(1, 0);
                self.rho[r * self.dim + (c | bit)] = lo * ud.at(0, 1) + hi * ud.at(1, 1);
            }
        }
        Ok(())
    }

    /// Applies `ρ ← U ρ U†` for a two-qubit gate (same operand convention
    /// as [`StateVector::apply2`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) -> Result<(), SimError> {
        if let Some(u) = gate.unitary1() {
            return self.apply1(&u, qubits[0]);
        }
        if let Some(u4) = gate.unitary2() {
            // Promote through the state-vector machinery: apply to each
            // column as a ket, then to each row as a bra.
            let (q0, q1) = (qubits[0], qubits[1]);
            self.check(q0)?;
            self.check(q1)?;
            let (b0, b1) = (1usize << q0, 1usize << q1);
            // Left multiplication.
            for c in 0..self.dim {
                for r in 0..self.dim {
                    if r & b0 != 0 || r & b1 != 0 {
                        continue;
                    }
                    let idx = [r, r | b0, r | b1, r | b0 | b1];
                    let v = [
                        self.rho[idx[0] * self.dim + c],
                        self.rho[idx[1] * self.dim + c],
                        self.rho[idx[2] * self.dim + c],
                        self.rho[idx[3] * self.dim + c],
                    ];
                    let w = u4.mul_vec(v);
                    for k in 0..4 {
                        self.rho[idx[k] * self.dim + c] = w[k];
                    }
                }
            }
            // Right multiplication by U†: (ρU†)[r,c] = Σ_k ρ[r,k]·U†[k,c]
            // = Σ_k ρ[r,k]·conj(U[c,k]).
            for r in 0..self.dim {
                for c in 0..self.dim {
                    if c & b0 != 0 || c & b1 != 0 {
                        continue;
                    }
                    let idx = [c, c | b0, c | b1, c | b0 | b1];
                    let v = [
                        self.rho[r * self.dim + idx[0]],
                        self.rho[r * self.dim + idx[1]],
                        self.rho[r * self.dim + idx[2]],
                        self.rho[r * self.dim + idx[3]],
                    ];
                    let mut w = [C64::ZERO; 4];
                    for (kc, wc) in w.iter_mut().enumerate() {
                        for (kk, vv) in v.iter().enumerate() {
                            *wc += *vv * u4.at(kc, kk).conj();
                        }
                    }
                    for k in 0..4 {
                        self.rho[r * self.dim + idx[k]] = w[k];
                    }
                }
            }
            return Ok(());
        }
        Ok(())
    }

    /// Single-qubit depolarizing channel with error probability `p`:
    /// `ρ ← (1−p)ρ + (p/3)(XρX + YρY + ZρZ)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn depolarize1(&mut self, q: usize, p: f64) -> Result<(), SimError> {
        self.check(q)?;
        let mut acc = self.scaled(1.0 - p);
        for g in [Gate::X, Gate::Y, Gate::Z] {
            let mut branch = self.clone();
            branch.apply1(&g.unitary1().expect("1q"), q)?;
            acc.add_scaled(&branch, p / 3.0);
        }
        *self = acc;
        Ok(())
    }

    /// Pure-dephasing channel: `ρ ← (1−p)ρ + p·ZρZ`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn dephase(&mut self, q: usize, p: f64) -> Result<(), SimError> {
        self.check(q)?;
        let mut z_branch = self.clone();
        z_branch.apply1(&Gate::Z.unitary1().expect("1q"), q)?;
        let mut acc = self.scaled(1.0 - p);
        acc.add_scaled(&z_branch, p);
        *self = acc;
        Ok(())
    }

    /// Amplitude damping with decay probability `gamma` (Kraus
    /// `K0 = diag(1, √(1−γ))`, `K1 = √γ·|0⟩⟨1|`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn amplitude_damp(&mut self, q: usize, gamma: f64) -> Result<(), SimError> {
        self.check(q)?;
        let bit = 1usize << q;
        let s = (1.0 - gamma).sqrt();
        let mut out = vec![C64::ZERO; self.dim * self.dim];
        for r in 0..self.dim {
            for c in 0..self.dim {
                let v = self.rho[r * self.dim + c];
                // K0 ρ K0†: scales rows/cols with q-bit set by √(1−γ).
                let k0 = match ((r & bit != 0) as u8, (c & bit != 0) as u8) {
                    (0, 0) => 1.0,
                    (1, 1) => s * s,
                    _ => s,
                };
                out[r * self.dim + c] += v.scale(k0);
                // K1 ρ K1†: moves the |1⟩⟨1| block to |0⟩⟨0| times γ.
                if r & bit != 0 && c & bit != 0 {
                    out[(r & !bit) * self.dim + (c & !bit)] += v.scale(gamma);
                }
            }
        }
        self.rho = out;
        Ok(())
    }

    /// Gaussian-averaged coherent Z rotation: the exact channel for a
    /// quasi-static detuning that accumulates phase `φ ~ N(0, σ²)` over an
    /// idle window. Off-diagonals in the qubit's basis decay by
    /// `e^{−σ²/2}` — this closed form is what the Monte-Carlo trajectories
    /// must reproduce on average.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn gaussian_z_phase(&mut self, q: usize, sigma_rad: f64) -> Result<(), SimError> {
        self.check(q)?;
        let bit = 1usize << q;
        let decay = (-sigma_rad * sigma_rad / 2.0).exp();
        for r in 0..self.dim {
            for c in 0..self.dim {
                if (r & bit != 0) != (c & bit != 0) {
                    self.rho[r * self.dim + c] = self.rho[r * self.dim + c].scale(decay);
                }
            }
        }
        Ok(())
    }

    /// Readout bit-flip channel on the classical outcome statistics
    /// (applied as a symmetric bit-flip on the diagonal).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn readout_flip(&mut self, q: usize, p: f64) -> Result<(), SimError> {
        self.check(q)?;
        let bit = 1usize << q;
        for i in 0..self.dim {
            if i & bit != 0 {
                continue;
            }
            let j = i | bit;
            let a = self.rho[i * self.dim + i];
            let b = self.rho[j * self.dim + j];
            self.rho[i * self.dim + i] = a.scale(1.0 - p) + b.scale(p);
            self.rho[j * self.dim + j] = b.scale(1.0 - p) + a.scale(p);
        }
        Ok(())
    }

    fn check(&self, q: usize) -> Result<(), SimError> {
        if q >= self.n {
            Err(SimError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.n,
            })
        } else {
            Ok(())
        }
    }

    fn scaled(&self, s: f64) -> DensityMatrix {
        let mut out = self.clone();
        for v in &mut out.rho {
            *v = v.scale(s);
        }
        out
    }

    fn add_scaled(&mut self, other: &DensityMatrix, s: f64) {
        for (a, b) in self.rho.iter_mut().zip(&other.rho) {
            *a += b.scale(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::Circuit;

    const TOL: f64 = 1e-10;

    #[test]
    fn pure_unitary_evolution_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).t(0).cx(0, 1).ry(0.7, 2).cz(1, 2).swap(0, 2);
        let sv = crate::run_ideal(&c).unwrap();
        let mut dm = DensityMatrix::new(3).unwrap();
        for instr in c.iter() {
            if let qcirc::OpKind::Gate(g) = &instr.kind {
                let qs: Vec<usize> = instr.qubits.iter().map(|q| q.index()).collect();
                dm.apply_gate(*g, &qs).unwrap();
            }
        }
        assert!((dm.trace().re - 1.0).abs() < TOL);
        assert!((dm.purity() - 1.0).abs() < TOL);
        assert!((dm.fidelity_pure(&sv) - 1.0).abs() < TOL);
        // Diagonals match exactly.
        for (p_dm, p_sv) in dm.probabilities().iter().zip(sv.probabilities()) {
            assert!((p_dm - p_sv).abs() < TOL);
        }
    }

    #[test]
    fn depolarizing_reduces_purity_toward_mixed() {
        let mut dm = DensityMatrix::new(1).unwrap();
        dm.apply1(&Gate::H.unitary1().unwrap(), 0).unwrap();
        assert!((dm.purity() - 1.0).abs() < TOL);
        dm.depolarize1(0, 0.75).unwrap(); // full depolarizing at p = 3/4
        assert!((dm.purity() - 0.5).abs() < 1e-9, "purity {}", dm.purity());
        assert!((dm.trace().re - 1.0).abs() < TOL);
    }

    #[test]
    fn dephasing_kills_coherences_only() {
        let mut dm = DensityMatrix::new(1).unwrap();
        dm.apply1(&Gate::H.unitary1().unwrap(), 0).unwrap();
        let diag_before = dm.probabilities();
        dm.dephase(0, 0.5).unwrap(); // complete dephasing
        assert!(dm.element(0, 1).norm() < TOL);
        for (a, b) in dm.probabilities().iter().zip(diag_before) {
            assert!((a - b).abs() < TOL);
        }
    }

    #[test]
    fn amplitude_damping_decays_excited_population() {
        let mut dm = DensityMatrix::new(1).unwrap();
        dm.apply1(&Gate::X.unitary1().unwrap(), 0).unwrap();
        dm.amplitude_damp(0, 0.3).unwrap();
        let p = dm.probabilities();
        assert!((p[1] - 0.7).abs() < TOL);
        assert!((p[0] - 0.3).abs() < TOL);
        assert!((dm.trace().re - 1.0).abs() < TOL);
        // Damping twice composes: 1 - 0.7·0.7.
        dm.amplitude_damp(0, 0.3).unwrap();
        assert!((dm.probabilities()[1] - 0.49).abs() < TOL);
    }

    #[test]
    fn gaussian_z_phase_closed_form() {
        // On |+⟩: ⟨X⟩ decays by e^{−σ²/2}; survival after unwind H is
        // (1 + e^{−σ²/2})/2.
        let sigma = 0.8f64;
        let mut dm = DensityMatrix::new(1).unwrap();
        dm.apply1(&Gate::H.unitary1().unwrap(), 0).unwrap();
        dm.gaussian_z_phase(0, sigma).unwrap();
        dm.apply1(&Gate::H.unitary1().unwrap(), 0).unwrap();
        let expected = (1.0 + (-sigma * sigma / 2.0).exp()) / 2.0;
        assert!(
            (dm.probabilities()[0] - expected).abs() < TOL,
            "{} vs {expected}",
            dm.probabilities()[0]
        );
    }

    #[test]
    fn readout_flip_mixes_diagonal() {
        let mut dm = DensityMatrix::new(1).unwrap();
        dm.readout_flip(0, 0.1).unwrap();
        let p = dm.probabilities();
        assert!((p[1] - 0.1).abs() < TOL);
    }

    #[test]
    fn channels_preserve_trace_and_positivity_diagonal() {
        let mut dm = DensityMatrix::new(2).unwrap();
        dm.apply1(&Gate::H.unitary1().unwrap(), 0).unwrap();
        dm.apply_gate(Gate::CX, &[0, 1]).unwrap();
        dm.depolarize1(0, 0.05).unwrap();
        dm.dephase(1, 0.1).unwrap();
        dm.amplitude_damp(0, 0.07).unwrap();
        dm.gaussian_z_phase(1, 0.4).unwrap();
        assert!((dm.trace().re - 1.0).abs() < 1e-9);
        for p in dm.probabilities() {
            assert!(p >= -1e-12, "negative population {p}");
        }
    }

    #[test]
    fn oversized_register_rejected() {
        assert!(DensityMatrix::new(MAX_DM_QUBITS + 1).is_err());
    }
}
