//! Structure-of-arrays state vector for the hot trajectory path.
//!
//! [`StateVector`](crate::StateVector) stores amplitudes as an array of
//! `C64` structs (AoS). That layout is convenient but hostile to
//! autovectorization: every complex multiply loads interleaved re/im
//! pairs. [`SoaStateVector`] keeps the real and imaginary parts in two
//! separate `f64` arrays so gate kernels compile to straight-line
//! scalar-f64 arithmetic over contiguous slices — the shape LLVM
//! vectorizes reliably — and adds specialized kernels for the structured
//! matrices that dominate transpiled circuits:
//!
//! - diagonal 1q (RZ, Z, S, phase products): two scaled passes, no
//!   cross terms;
//! - anti-diagonal 1q (X, Y and their diagonal products): a scaled swap;
//! - CX / CZ / SWAP 2q: pure permutations/sign flips, no matrix math.
//!
//! Semantics (basis ordering, operand conventions, measurement and
//! sampling draws) match [`StateVector`](crate::StateVector) exactly:
//! for any gate sequence and rng, both simulators produce the same
//! amplitudes and consume the same number of random draws.

use crate::{SimError, MAX_QUBITS};
use qcirc::math::{Mat2, Mat4, C64};
use rand::Rng;

/// A dense pure-state simulator with split re/im storage.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaStateVector {
    n: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl SoaStateVector {
    /// Creates the all-zeros state `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] when the register exceeds
    /// [`MAX_QUBITS`].
    pub fn try_new(n: usize) -> Result<Self, SimError> {
        if n > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: n,
                limit: MAX_QUBITS,
            });
        }
        let mut re = vec![0.0; 1 << n];
        let im = vec![0.0; 1 << n];
        re[0] = 1.0;
        Ok(SoaStateVector { n, re, im })
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Amplitude of a computational basis state.
    pub fn amplitude(&self, basis: u64) -> C64 {
        C64::new(self.re[basis as usize], self.im[basis as usize])
    }

    fn check_qubit(&self, q: usize) -> Result<(), SimError> {
        if q >= self.n {
            Err(SimError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.n,
            })
        } else {
            Ok(())
        }
    }

    /// Applies a general single-qubit unitary to qubit `q`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn apply1(&mut self, u: &Mat2, q: usize) -> Result<(), SimError> {
        self.check_qubit(q)?;
        let s = 1usize << q;
        let (m00, m01, m10, m11) = (u.at(0, 0), u.at(0, 1), u.at(1, 0), u.at(1, 1));
        for (rc, ic) in self
            .re
            .chunks_exact_mut(2 * s)
            .zip(self.im.chunks_exact_mut(2 * s))
        {
            let (rlo, rhi) = rc.split_at_mut(s);
            let (ilo, ihi) = ic.split_at_mut(s);
            for (((ar, ai), br), bi) in rlo
                .iter_mut()
                .zip(ilo.iter_mut())
                .zip(rhi.iter_mut())
                .zip(ihi.iter_mut())
            {
                let (a_r, a_i, b_r, b_i) = (*ar, *ai, *br, *bi);
                *ar = m00.re * a_r - m00.im * a_i + m01.re * b_r - m01.im * b_i;
                *ai = m00.re * a_i + m00.im * a_r + m01.re * b_i + m01.im * b_r;
                *br = m10.re * a_r - m10.im * a_i + m11.re * b_r - m11.im * b_i;
                *bi = m10.re * a_i + m10.im * a_r + m11.re * b_i + m11.im * b_r;
            }
        }
        Ok(())
    }

    /// Applies `diag(d0, d1)` to qubit `q` — two scaled passes with no
    /// cross terms.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn apply_diag1(&mut self, d0: C64, d1: C64, q: usize) -> Result<(), SimError> {
        self.check_qubit(q)?;
        let s = 1usize << q;
        for (rc, ic) in self
            .re
            .chunks_exact_mut(2 * s)
            .zip(self.im.chunks_exact_mut(2 * s))
        {
            let (rlo, rhi) = rc.split_at_mut(s);
            let (ilo, ihi) = ic.split_at_mut(s);
            for (ar, ai) in rlo.iter_mut().zip(ilo.iter_mut()) {
                let (a_r, a_i) = (*ar, *ai);
                *ar = d0.re * a_r - d0.im * a_i;
                *ai = d0.re * a_i + d0.im * a_r;
            }
            for (br, bi) in rhi.iter_mut().zip(ihi.iter_mut()) {
                let (b_r, b_i) = (*br, *bi);
                *br = d1.re * b_r - d1.im * b_i;
                *bi = d1.re * b_i + d1.im * b_r;
            }
        }
        Ok(())
    }

    /// Applies the anti-diagonal unitary `[[0, a01], [a10, 0]]` to qubit
    /// `q` — a scaled swap of the two half-blocks.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn apply_antidiag1(&mut self, a01: C64, a10: C64, q: usize) -> Result<(), SimError> {
        self.check_qubit(q)?;
        let s = 1usize << q;
        for (rc, ic) in self
            .re
            .chunks_exact_mut(2 * s)
            .zip(self.im.chunks_exact_mut(2 * s))
        {
            let (rlo, rhi) = rc.split_at_mut(s);
            let (ilo, ihi) = ic.split_at_mut(s);
            for (((ar, ai), br), bi) in rlo
                .iter_mut()
                .zip(ilo.iter_mut())
                .zip(rhi.iter_mut())
                .zip(ihi.iter_mut())
            {
                let (a_r, a_i, b_r, b_i) = (*ar, *ai, *br, *bi);
                *ar = a01.re * b_r - a01.im * b_i;
                *ai = a01.re * b_i + a01.im * b_r;
                *br = a10.re * a_r - a10.im * a_i;
                *bi = a10.re * a_i + a10.im * a_r;
            }
        }
        Ok(())
    }

    /// Applies a general two-qubit unitary; `q0` is the low bit of the
    /// 4×4 basis (the [`qcirc::Gate::unitary2`] convention: the first
    /// gate operand — e.g. the CX control — is the low bit).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn apply2(&mut self, u: &Mat4, q0: usize, q1: usize) -> Result<(), SimError> {
        self.check_qubit(q0)?;
        self.check_qubit(q1)?;
        debug_assert_ne!(q0, q1, "two-qubit gate needs distinct operands");
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        for idx in 0..self.re.len() {
            if idx & b0 != 0 || idx & b1 != 0 {
                continue;
            }
            let is = [idx, idx | b0, idx | b1, idx | b0 | b1];
            let v = [
                C64::new(self.re[is[0]], self.im[is[0]]),
                C64::new(self.re[is[1]], self.im[is[1]]),
                C64::new(self.re[is[2]], self.im[is[2]]),
                C64::new(self.re[is[3]], self.im[is[3]]),
            ];
            let w = u.mul_vec(v);
            for (k, &i) in is.iter().enumerate() {
                self.re[i] = w[k].re;
                self.im[i] = w[k].im;
            }
        }
        Ok(())
    }

    /// CX with control `c` and target `t`: a conditional amplitude swap,
    /// no matrix arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn apply_cx(&mut self, c: usize, t: usize) -> Result<(), SimError> {
        self.check_qubit(c)?;
        self.check_qubit(t)?;
        let cb = 1usize << c;
        let tb = 1usize << t;
        for idx in 0..self.re.len() {
            if idx & cb != 0 && idx & tb == 0 {
                self.re.swap(idx, idx | tb);
                self.im.swap(idx, idx | tb);
            }
        }
        Ok(())
    }

    /// CZ on `(a, b)`: negates amplitudes with both bits set.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn apply_cz(&mut self, a: usize, b: usize) -> Result<(), SimError> {
        self.check_qubit(a)?;
        self.check_qubit(b)?;
        let mask = (1usize << a) | (1usize << b);
        for idx in 0..self.re.len() {
            if idx & mask == mask {
                self.re[idx] = -self.re[idx];
                self.im[idx] = -self.im[idx];
            }
        }
        Ok(())
    }

    /// SWAP on `(a, b)`: exchanges the `a=1,b=0` and `a=0,b=1` blocks.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn apply_swap(&mut self, a: usize, b: usize) -> Result<(), SimError> {
        self.check_qubit(a)?;
        self.check_qubit(b)?;
        let ab = 1usize << a;
        let bb = 1usize << b;
        for idx in 0..self.re.len() {
            if idx & ab != 0 && idx & bb == 0 {
                self.re.swap(idx, idx ^ ab ^ bb);
                self.im.swap(idx, idx ^ ab ^ bb);
            }
        }
        Ok(())
    }

    /// Probability that qubit `q` measures as 1.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn prob_one(&self, q: usize) -> Result<f64, SimError> {
        self.check_qubit(q)?;
        let bit = 1usize << q;
        let mut p = 0.0;
        for (i, (&r, &im)) in self.re.iter().zip(&self.im).enumerate() {
            if i & bit != 0 {
                p += r * r + im * im;
            }
        }
        Ok(p)
    }

    /// Projectively measures qubit `q`, collapsing the state. Consumes
    /// exactly one uniform draw, like
    /// [`StateVector::measure`](crate::StateVector::measure).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> Result<bool, SimError> {
        let p1 = self.prob_one(q)?;
        let outcome = rng.gen::<f64>() < p1;
        self.collapse(q, outcome)?;
        Ok(outcome)
    }

    /// Forces qubit `q` into the given outcome, renormalizing.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn collapse(&mut self, q: usize, outcome: bool) -> Result<(), SimError> {
        self.check_qubit(q)?;
        let bit = 1usize << q;
        let mut norm = 0.0;
        for (i, (r, im)) in self.re.iter_mut().zip(self.im.iter_mut()).enumerate() {
            if ((i & bit) != 0) != outcome {
                *r = 0.0;
                *im = 0.0;
            } else {
                norm += *r * *r + *im * *im;
            }
        }
        if norm > 0.0 {
            let s = 1.0 / norm.sqrt();
            for (r, im) in self.re.iter_mut().zip(self.im.iter_mut()) {
                *r *= s;
                *im *= s;
            }
        }
        Ok(())
    }

    /// Resets qubit `q` to `|0⟩` (measure + conditional X, as hardware
    /// does).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad operand.
    pub fn reset<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> Result<(), SimError> {
        let outcome = self.measure(q, rng)?;
        if outcome {
            self.apply_antidiag1(C64::ONE, C64::ONE, q)?;
        }
        Ok(())
    }

    /// Samples a full-register computational-basis outcome *without*
    /// collapsing the state. Consumes exactly one uniform draw.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, (&re, &im)) in self.re.iter().zip(&self.im).enumerate() {
            acc += re * re + im * im;
            if r < acc {
                return i as u64;
            }
        }
        (self.re.len() - 1) as u64
    }

    /// The probability of each basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| r * r + i * i)
            .collect()
    }

    /// Renormalizes to unit norm (guards against floating-point drift in
    /// long trajectories).
    pub fn normalize(&mut self) {
        let norm: f64 = self
            .re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| r * r + i * i)
            .sum();
        if norm > 0.0 {
            let s = 1.0 / norm.sqrt();
            for (r, im) in self.re.iter_mut().zip(self.im.iter_mut()) {
                *r *= s;
                *im *= s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateVector;
    use qcirc::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_matches_aos(soa: &SoaStateVector, aos: &StateVector) {
        for i in 0..aos.amplitudes().len() {
            let a = aos.amplitude(i as u64);
            let s = soa.amplitude(i as u64);
            assert!(
                s.approx_eq(a, 1e-12),
                "amplitude {i}: soa {s:?} vs aos {a:?}"
            );
        }
    }

    #[test]
    fn generic_kernels_match_aos_on_random_circuit() {
        let gates: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::H, vec![0]),
            (Gate::RZ(0.7), vec![1]),
            (Gate::SX, vec![2]),
            (Gate::CX, vec![0, 2]),
            (Gate::T, vec![1]),
            (Gate::RY(1.1), vec![3]),
            (Gate::CZ, vec![1, 3]),
            (Gate::U(0.3, 0.4, 0.5), vec![0]),
            (Gate::Swap, vec![2, 3]),
            (Gate::RX(2.2), vec![2]),
        ];
        let mut soa = SoaStateVector::try_new(4).unwrap();
        let mut aos = StateVector::new(4);
        for (g, qs) in gates {
            if let Some(u) = g.unitary1() {
                soa.apply1(&u, qs[0]).unwrap();
                aos.apply1(&u, qs[0]).unwrap();
            } else if let Some(u) = g.unitary2() {
                soa.apply2(&u, qs[0], qs[1]).unwrap();
                aos.apply2(&u, qs[0], qs[1]).unwrap();
            }
        }
        assert_matches_aos(&soa, &aos);
    }

    #[test]
    fn diag_and_antidiag_kernels_match_generic() {
        for q in 0..3 {
            for g in [Gate::Z, Gate::S, Gate::Sdg, Gate::RZ(0.37), Gate::P(1.3)] {
                let u = g.unitary1().unwrap();
                let mut a = SoaStateVector::try_new(3).unwrap();
                let mut b = SoaStateVector::try_new(3).unwrap();
                // Prepare a non-trivial state first.
                for w in 0..3 {
                    a.apply1(&Gate::H.unitary1().unwrap(), w).unwrap();
                    b.apply1(&Gate::H.unitary1().unwrap(), w).unwrap();
                    a.apply1(&Gate::RZ(0.2 + w as f64).unitary1().unwrap(), w)
                        .unwrap();
                    b.apply1(&Gate::RZ(0.2 + w as f64).unitary1().unwrap(), w)
                        .unwrap();
                }
                a.apply1(&u, q).unwrap();
                b.apply_diag1(u.at(0, 0), u.at(1, 1), q).unwrap();
                for i in 0..8 {
                    assert!(a.amplitude(i).approx_eq(b.amplitude(i), 1e-12));
                }
            }
            for g in [Gate::X, Gate::Y] {
                let u = g.unitary1().unwrap();
                let mut a = SoaStateVector::try_new(3).unwrap();
                let mut b = SoaStateVector::try_new(3).unwrap();
                a.apply1(&Gate::H.unitary1().unwrap(), 1).unwrap();
                b.apply1(&Gate::H.unitary1().unwrap(), 1).unwrap();
                a.apply1(&u, q).unwrap();
                b.apply_antidiag1(u.at(0, 1), u.at(1, 0), q).unwrap();
                for i in 0..8 {
                    assert!(a.amplitude(i).approx_eq(b.amplitude(i), 1e-12));
                }
            }
        }
    }

    #[test]
    fn permutation_kernels_match_generic_two_qubit() {
        let pairs = [(0usize, 1usize), (1, 0), (0, 2), (2, 0), (1, 2)];
        for &(q0, q1) in &pairs {
            for g in [Gate::CX, Gate::CZ, Gate::Swap] {
                let u = g.unitary2().unwrap();
                let mut a = SoaStateVector::try_new(3).unwrap();
                let mut b = SoaStateVector::try_new(3).unwrap();
                for w in 0..3 {
                    let h = Gate::H.unitary1().unwrap();
                    let r = Gate::RZ(0.4 * (w + 1) as f64).unitary1().unwrap();
                    a.apply1(&h, w).unwrap();
                    a.apply1(&r, w).unwrap();
                    b.apply1(&h, w).unwrap();
                    b.apply1(&r, w).unwrap();
                }
                a.apply2(&u, q0, q1).unwrap();
                match g {
                    Gate::CX => b.apply_cx(q0, q1).unwrap(),
                    Gate::CZ => b.apply_cz(q0, q1).unwrap(),
                    Gate::Swap => b.apply_swap(q0, q1).unwrap(),
                    _ => unreachable!(),
                }
                for i in 0..8 {
                    assert!(
                        a.amplitude(i).approx_eq(b.amplitude(i), 1e-12),
                        "{g:?} on ({q0},{q1}) amplitude {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn measurement_and_sampling_draw_parity_with_aos() {
        // Same gates, same seed: both simulators must produce identical
        // measurement outcomes and samples (identical draw sequence).
        let mut soa = SoaStateVector::try_new(2).unwrap();
        let mut aos = StateVector::new(2);
        let h = Gate::H.unitary1().unwrap();
        soa.apply1(&h, 0).unwrap();
        aos.apply1(&h, 0).unwrap();
        soa.apply_cx(0, 1).unwrap();
        aos.apply2(&Gate::CX.unitary2().unwrap(), 0, 1).unwrap();
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            assert_eq!(soa.sample(&mut r1), aos.sample(&mut r2));
        }
        let m1 = soa.measure(0, &mut r1).unwrap();
        let m2 = aos.measure(0, &mut r2).unwrap();
        assert_eq!(m1, m2);
        assert_matches_aos(&soa, &aos);
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let mut sv = SoaStateVector::try_new(1).unwrap();
            sv.apply1(&Gate::H.unitary1().unwrap(), 0).unwrap();
            sv.reset(0, &mut rng).unwrap();
            assert!(sv.prob_one(0).unwrap() < 1e-9);
        }
    }

    #[test]
    fn too_many_qubits_rejected() {
        assert!(matches!(
            SoaStateVector::try_new(MAX_QUBITS + 1),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn normalize_restores_unit_norm() {
        let mut sv = SoaStateVector::try_new(2).unwrap();
        sv.apply1(&Gate::H.unitary1().unwrap(), 0).unwrap();
        sv.re.iter_mut().for_each(|r| *r *= 3.0);
        sv.im.iter_mut().for_each(|i| *i *= 3.0);
        sv.normalize();
        let norm: f64 = sv.probabilities().iter().sum();
        assert!((norm - 1.0).abs() < 1e-12);
    }
}
