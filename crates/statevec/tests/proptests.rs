//! Property-based tests of the dense simulator: norm preservation,
//! unitary composition, and measurement consistency.

use proptest::prelude::*;
use qcirc::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::SeedableRng;
use statevec::StateVector;

#[derive(Debug, Clone)]
enum Op {
    One(Gate, usize),
    Two(Gate, usize, usize),
}

fn arb_op(n: usize) -> impl Strategy<Value = Op> {
    let one = (0usize..7, 0..n, -3.0..3.0f64).prop_map(|(g, q, t)| {
        let gate = match g {
            0 => Gate::H,
            1 => Gate::X,
            2 => Gate::S,
            3 => Gate::T,
            4 => Gate::RX(t),
            5 => Gate::RY(t),
            _ => Gate::RZ(t),
        };
        Op::One(gate, q)
    });
    let two = (0usize..3, 0..n, 1..n).prop_map(move |(g, a, d)| {
        let b = (a + d) % n;
        let gate = match g {
            0 => Gate::CX,
            1 => Gate::CZ,
            _ => Gate::Swap,
        };
        Op::Two(gate, a, b)
    });
    prop_oneof![3 => one, 1 => two]
}

fn apply_ops(sv: &mut StateVector, ops: &[Op]) {
    for op in ops {
        match op {
            Op::One(g, q) => sv.apply1(&g.unitary1().expect("1q"), *q).expect("apply1"),
            Op::Two(g, a, b) => sv
                .apply2(&g.unitary2().expect("2q"), *a, *b)
                .expect("apply2"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_circuits_preserve_norm(ops in proptest::collection::vec(arb_op(4), 1..50)) {
        let mut sv = StateVector::new(4);
        apply_ops(&mut sv, &ops);
        let norm: f64 = sv.probabilities().iter().sum();
        prop_assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn forward_then_inverse_returns_to_start(ops in proptest::collection::vec(arb_op(3), 1..30)) {
        let mut sv = StateVector::new(3);
        apply_ops(&mut sv, &ops);
        let mid = sv.clone();
        // Apply inverses in reverse order.
        for op in ops.iter().rev() {
            match op {
                Op::One(g, q) => sv
                    .apply1(&g.inverse().unitary1().expect("1q"), *q)
                    .expect("apply1"),
                Op::Two(g, a, b) => sv
                    .apply2(&g.inverse().unitary2().expect("2q"), *a, *b)
                    .expect("apply2"),
            }
        }
        let start = StateVector::new(3);
        prop_assert!((sv.fidelity(&start) - 1.0).abs() < 1e-7);
        // And the midpoint state was normalized too.
        let norm: f64 = mid.probabilities().iter().sum();
        prop_assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prob_one_matches_probability_mass(ops in proptest::collection::vec(arb_op(4), 1..40), q in 0usize..4) {
        let mut sv = StateVector::new(4);
        apply_ops(&mut sv, &ops);
        let p1 = sv.prob_one(q).expect("in range");
        let direct: f64 = sv
            .probabilities()
            .iter()
            .enumerate()
            .filter(|(i, _)| i >> q & 1 == 1)
            .map(|(_, p)| p)
            .sum();
        prop_assert!((p1 - direct).abs() < 1e-9);
    }

    #[test]
    fn measurement_collapse_is_consistent(
        ops in proptest::collection::vec(arb_op(3), 1..30),
        q in 0usize..3,
        seed in 0u64..1000,
    ) {
        let mut sv = StateVector::new(3);
        apply_ops(&mut sv, &ops);
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = sv.measure(q, &mut rng).expect("in range");
        // Post-collapse: probability of the observed outcome is 1.
        let p1 = sv.prob_one(q).expect("in range");
        let expected = if outcome { 1.0 } else { 0.0 };
        prop_assert!((p1 - expected).abs() < 1e-9);
        // State still normalized.
        let norm: f64 = sv.probabilities().iter().sum();
        prop_assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ideal_distribution_normalized_for_random_programs(
        ops in proptest::collection::vec(arb_op(4), 1..40)
    ) {
        let mut c = Circuit::new(4);
        for op in &ops {
            match op {
                Op::One(g, q) => { c.gate(*g, &[*q as u32]); }
                Op::Two(g, a, b) => { c.gate(*g, &[*a as u32, *b as u32]); }
            }
        }
        c.measure_all();
        let d = statevec::ideal_distribution(&c).expect("small circuit");
        let total: f64 = d.values().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for p in d.values() {
            prop_assert!(*p >= 0.0 && *p <= 1.0 + 1e-12);
        }
    }
}
