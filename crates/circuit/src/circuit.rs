//! Circuit intermediate representation.
//!
//! A [`Circuit`] is an ordered list of [`Instruction`]s over a fixed register
//! of qubits and classical bits. It is the lingua franca of the stack: the
//! benchmark generators produce it, the transpiler rewrites it, the ADAPT
//! pass inserts DD sequences into it, and the simulators execute it.

use crate::gate::Gate;
use std::fmt;

/// Index of a qubit within a circuit or device.
///
/// # Examples
///
/// ```
/// use qcirc::Qubit;
/// let q = Qubit::new(3);
/// assert_eq!(q.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Qubit(u32);

impl Qubit {
    /// Creates a qubit index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Qubit(index)
    }

    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Qubit {
    fn from(v: u32) -> Self {
        Qubit(v)
    }
}

impl From<usize> for Qubit {
    fn from(v: usize) -> Self {
        Qubit(v as u32)
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q[{}]", self.0)
    }
}

/// Index of a classical bit receiving a measurement outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Clbit(u32);

impl Clbit {
    /// Creates a classical bit index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Clbit(index)
    }

    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Clbit {
    fn from(v: u32) -> Self {
        Clbit(v)
    }
}

impl From<usize> for Clbit {
    fn from(v: usize) -> Self {
        Clbit(v as u32)
    }
}

impl fmt::Display for Clbit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c[{}]", self.0)
    }
}

/// The operation performed by an [`Instruction`].
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// A unitary gate.
    Gate(Gate),
    /// Computational-basis measurement into the given classical bit.
    Measure(Clbit),
    /// Reset the qubit to `|0⟩`.
    Reset,
    /// Explicit idle period of the given duration in nanoseconds.
    Delay(f64),
    /// Scheduling barrier across the instruction's qubits.
    Barrier,
}

/// One operation on specific qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// What to do.
    pub kind: OpKind,
    /// The qubit operands (control first for [`Gate::CX`]).
    pub qubits: Vec<Qubit>,
}

impl Instruction {
    /// Creates a gate instruction.
    pub fn gate(gate: Gate, qubits: Vec<Qubit>) -> Self {
        Instruction {
            kind: OpKind::Gate(gate),
            qubits,
        }
    }

    /// The gate, if this instruction is one.
    pub fn as_gate(&self) -> Option<Gate> {
        match self.kind {
            OpKind::Gate(g) => Some(g),
            _ => None,
        }
    }

    /// True for two-qubit gates (the crosstalk/idle-structure carriers).
    pub fn is_two_qubit_gate(&self) -> bool {
        matches!(self.kind, OpKind::Gate(g) if g.arity() == 2)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qs: Vec<String> = self.qubits.iter().map(|q| q.to_string()).collect();
        match &self.kind {
            OpKind::Gate(g) => write!(f, "{} {}", g, qs.join(", ")),
            OpKind::Measure(c) => write!(f, "measure {} -> {}", qs.join(", "), c),
            OpKind::Reset => write!(f, "reset {}", qs.join(", ")),
            OpKind::Delay(ns) => write!(f, "delay({ns:.1}ns) {}", qs.join(", ")),
            OpKind::Barrier => write!(f, "barrier {}", qs.join(", ")),
        }
    }
}

/// Error raised when building or validating a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A qubit operand exceeds the circuit's register size.
    QubitOutOfRange {
        /// Offending index.
        qubit: usize,
        /// Register size.
        num_qubits: usize,
    },
    /// A classical bit operand exceeds the circuit's classical register size.
    ClbitOutOfRange {
        /// Offending index.
        clbit: usize,
        /// Register size.
        num_clbits: usize,
    },
    /// An instruction repeats a qubit operand (e.g. `cx q, q`).
    DuplicateOperand {
        /// The repeated index.
        qubit: usize,
    },
    /// A gate received the wrong number of qubit operands.
    WrongArity {
        /// Gate mnemonic.
        gate: &'static str,
        /// Expected operand count.
        expected: usize,
        /// Actual operand count.
        actual: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {num_qubits}-qubit circuit"
                )
            }
            CircuitError::ClbitOutOfRange { clbit, num_clbits } => {
                write!(
                    f,
                    "clbit {clbit} out of range for {num_clbits} classical bits"
                )
            }
            CircuitError::DuplicateOperand { qubit } => {
                write!(f, "duplicate qubit operand {qubit}")
            }
            CircuitError::WrongArity {
                gate,
                expected,
                actual,
            } => write!(f, "gate {gate} expects {expected} operands, got {actual}"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// An ordered quantum circuit over `num_qubits` qubits and `num_clbits`
/// classical bits.
///
/// Builder methods panic on out-of-range operands (see [`Circuit::try_push`]
/// for the fallible path) and return `&mut Self` so construction chains:
///
/// ```
/// use qcirc::{Circuit, Qubit};
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).measure_all();
/// assert_eq!(c.len(), 4);
/// assert_eq!(c.depth(), 3); // h → cx → parallel measures
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    num_clbits: usize,
    instrs: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit with `num_qubits` qubits and as many
    /// classical bits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            num_clbits: num_qubits,
            instrs: Vec::new(),
        }
    }

    /// Creates an empty circuit with distinct quantum and classical register
    /// sizes.
    pub fn with_clbits(num_qubits: usize, num_clbits: usize) -> Self {
        Circuit {
            num_qubits,
            num_clbits,
            instrs: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instructions in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instrs.iter()
    }

    /// Validates and appends an instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] when an operand is out of range, repeated,
    /// or the operand count does not match the gate arity.
    pub fn try_push(&mut self, instr: Instruction) -> Result<(), CircuitError> {
        for q in &instr.qubits {
            if q.index() >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q.index(),
                    num_qubits: self.num_qubits,
                });
            }
        }
        for (i, q) in instr.qubits.iter().enumerate() {
            if instr.qubits[..i].contains(q) {
                return Err(CircuitError::DuplicateOperand { qubit: q.index() });
            }
        }
        match &instr.kind {
            OpKind::Gate(g) => {
                if g.arity() != instr.qubits.len() {
                    return Err(CircuitError::WrongArity {
                        gate: g.name(),
                        expected: g.arity(),
                        actual: instr.qubits.len(),
                    });
                }
            }
            OpKind::Measure(c) => {
                if c.index() >= self.num_clbits {
                    return Err(CircuitError::ClbitOutOfRange {
                        clbit: c.index(),
                        num_clbits: self.num_clbits,
                    });
                }
            }
            OpKind::Reset | OpKind::Delay(_) | OpKind::Barrier => {}
        }
        self.instrs.push(instr);
        Ok(())
    }

    /// Appends an instruction.
    ///
    /// # Panics
    ///
    /// Panics when the instruction is invalid; see [`Circuit::try_push`].
    pub fn push(&mut self, instr: Instruction) -> &mut Self {
        if let Err(e) = self.try_push(instr) {
            panic!("invalid instruction: {e}");
        }
        self
    }

    /// Appends a gate on the given qubits.
    ///
    /// # Panics
    ///
    /// Panics on invalid operands.
    pub fn gate(&mut self, gate: Gate, qubits: &[u32]) -> &mut Self {
        let qs = qubits.iter().map(|&q| Qubit::new(q)).collect();
        self.push(Instruction::gate(gate, qs))
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::H, &[q])
    }

    /// Appends a Pauli-X.
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::X, &[q])
    }

    /// Appends a Pauli-Y.
    pub fn y(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::Y, &[q])
    }

    /// Appends a Pauli-Z.
    pub fn z(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::Z, &[q])
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::S, &[q])
    }

    /// Appends an S† gate.
    pub fn sdg(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::Sdg, &[q])
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::T, &[q])
    }

    /// Appends a T† gate.
    pub fn tdg(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::Tdg, &[q])
    }

    /// Appends a √X gate.
    pub fn sx(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::SX, &[q])
    }

    /// Appends an RX rotation.
    pub fn rx(&mut self, theta: f64, q: u32) -> &mut Self {
        self.gate(Gate::RX(theta), &[q])
    }

    /// Appends an RY rotation.
    pub fn ry(&mut self, theta: f64, q: u32) -> &mut Self {
        self.gate(Gate::RY(theta), &[q])
    }

    /// Appends an RZ rotation.
    pub fn rz(&mut self, theta: f64, q: u32) -> &mut Self {
        self.gate(Gate::RZ(theta), &[q])
    }

    /// Appends a phase gate.
    pub fn p(&mut self, theta: f64, q: u32) -> &mut Self {
        self.gate(Gate::P(theta), &[q])
    }

    /// Appends a CNOT with `control` and `target`.
    pub fn cx(&mut self, control: u32, target: u32) -> &mut Self {
        self.gate(Gate::CX, &[control, target])
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: u32, b: u32) -> &mut Self {
        self.gate(Gate::CZ, &[a, b])
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: u32, b: u32) -> &mut Self {
        self.gate(Gate::Swap, &[a, b])
    }

    /// Appends a measurement of qubit `q` into classical bit `c`.
    pub fn measure(&mut self, q: u32, c: u32) -> &mut Self {
        self.push(Instruction {
            kind: OpKind::Measure(Clbit::new(c)),
            qubits: vec![Qubit::new(q)],
        })
    }

    /// Measures qubit `i` into classical bit `i` for every qubit.
    pub fn measure_all(&mut self) -> &mut Self {
        let n = self.num_qubits.min(self.num_clbits);
        for q in 0..n as u32 {
            self.measure(q, q);
        }
        self
    }

    /// Appends an explicit delay (ns) on a qubit.
    pub fn delay(&mut self, ns: f64, q: u32) -> &mut Self {
        self.push(Instruction {
            kind: OpKind::Delay(ns),
            qubits: vec![Qubit::new(q)],
        })
    }

    /// Appends a barrier over all qubits.
    pub fn barrier_all(&mut self) -> &mut Self {
        let qs = (0..self.num_qubits as u32).map(Qubit::new).collect();
        self.push(Instruction {
            kind: OpKind::Barrier,
            qubits: qs,
        })
    }

    /// Appends a barrier over specific qubits.
    pub fn barrier(&mut self, qubits: &[u32]) -> &mut Self {
        let qs = qubits.iter().map(|&q| Qubit::new(q)).collect();
        self.push(Instruction {
            kind: OpKind::Barrier,
            qubits: qs,
        })
    }

    /// Appends every instruction of `other` (registers must be compatible).
    ///
    /// # Panics
    ///
    /// Panics when `other` references qubits or clbits outside this
    /// circuit's registers.
    pub fn extend_from(&mut self, other: &Circuit) -> &mut Self {
        for instr in other.iter() {
            self.push(instr.clone());
        }
        self
    }

    /// Number of gate instructions (excludes measure/reset/delay/barrier).
    pub fn gate_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i.kind, OpKind::Gate(_)))
            .count()
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_two_qubit_gate()).count()
    }

    /// Circuit depth: the longest chain of operations through any qubit,
    /// counting gates, measurements and resets (barriers and delays shape the
    /// schedule but add no depth).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        for instr in &self.instrs {
            match instr.kind {
                OpKind::Gate(_) | OpKind::Measure(_) | OpKind::Reset => {
                    let d = instr
                        .qubits
                        .iter()
                        .map(|q| level[q.index()])
                        .max()
                        .unwrap_or(0)
                        + 1;
                    for q in &instr.qubits {
                        level[q.index()] = d;
                    }
                }
                OpKind::Barrier => {
                    let d = instr
                        .qubits
                        .iter()
                        .map(|q| level[q.index()])
                        .max()
                        .unwrap_or(0);
                    for q in &instr.qubits {
                        level[q.index()] = d;
                    }
                }
                OpKind::Delay(_) => {}
            }
        }
        level.into_iter().max().unwrap_or(0)
    }

    /// The unitary part of the circuit reversed and inverted — appendable
    /// after `self` to undo it. Non-unitary instructions (measure, reset) are
    /// skipped; delays and barriers are kept in reversed order.
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::with_clbits(self.num_qubits, self.num_clbits);
        for instr in self.instrs.iter().rev() {
            match &instr.kind {
                OpKind::Gate(g) => {
                    inv.push(Instruction::gate(g.inverse(), instr.qubits.clone()));
                }
                OpKind::Delay(_) | OpKind::Barrier => {
                    inv.push(instr.clone());
                }
                OpKind::Measure(_) | OpKind::Reset => {}
            }
        }
        inv
    }

    /// Qubits that appear in at least one gate, measurement or reset.
    pub fn active_qubits(&self) -> Vec<Qubit> {
        let mut seen = vec![false; self.num_qubits];
        for instr in &self.instrs {
            if !matches!(instr.kind, OpKind::Barrier | OpKind::Delay(_)) {
                for q in &instr.qubits {
                    seen[q.index()] = true;
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(i, _)| Qubit::new(i as u32))
            .collect()
    }

    /// Rewrites the circuit onto a compact register containing only its
    /// active qubits (plus any barrier/delay references to them), returning
    /// the compact circuit and the mapping from new index to old index.
    ///
    /// Classical bits are untouched, so measurement-outcome distributions
    /// are identical — this is how 27-qubit physical circuits with ~10
    /// active qubits fit in the dense simulator.
    pub fn compacted(&self) -> (Circuit, Vec<u32>) {
        let active = self.active_qubits();
        let new_to_old: Vec<u32> = active.iter().map(|q| q.index() as u32).collect();
        let mut old_to_new = vec![None; self.num_qubits];
        for (new, &old) in new_to_old.iter().enumerate() {
            old_to_new[old as usize] = Some(new as u32);
        }
        let mut out = Circuit::with_clbits(new_to_old.len(), self.num_clbits);
        for instr in &self.instrs {
            let qubits: Vec<Qubit> = instr
                .qubits
                .iter()
                .filter_map(|q| old_to_new[q.index()].map(Qubit::new))
                .collect();
            // Barriers/delays may reference only inactive qubits; drop them.
            if qubits.is_empty() {
                continue;
            }
            out.push(Instruction {
                kind: instr.kind.clone(),
                qubits,
            });
        }
        (out, new_to_old)
    }

    /// Histogram of gate mnemonics.
    pub fn count_ops(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for instr in &self.instrs {
            let name = match &instr.kind {
                OpKind::Gate(g) => g.name(),
                OpKind::Measure(_) => "measure",
                OpKind::Reset => "reset",
                OpKind::Delay(_) => "delay",
                OpKind::Barrier => "barrier",
            };
            *counts.entry(name).or_insert(0) += 1;
        }
        counts
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "qreg q[{}]; creg c[{}];",
            self.num_qubits, self.num_clbits
        )?;
        for instr in &self.instrs {
            writeln!(f, "{instr};")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(0.5, 2).measure_all();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.len(), 7);
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.two_qubit_gate_count(), 2);
        let ops = c.count_ops();
        assert_eq!(ops["cx"], 2);
        assert_eq!(ops["measure"], 3);
    }

    #[test]
    fn depth_tracks_critical_path() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // parallel layer: depth 1
        assert_eq!(c.depth(), 1);
        c.cx(0, 1); // depth 2
        c.cx(1, 2); // depth 3
        assert_eq!(c.depth(), 3);
        c.x(0); // still depth 3 (q0 free at level 2)
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn out_of_range_qubit_rejected() {
        let mut c = Circuit::new(2);
        let err = c
            .try_push(Instruction::gate(Gate::X, vec![Qubit::new(5)]))
            .unwrap_err();
        assert!(matches!(
            err,
            CircuitError::QubitOutOfRange { qubit: 5, .. }
        ));
    }

    #[test]
    fn duplicate_operand_rejected() {
        let mut c = Circuit::new(2);
        let err = c
            .try_push(Instruction::gate(
                Gate::CX,
                vec![Qubit::new(1), Qubit::new(1)],
            ))
            .unwrap_err();
        assert!(matches!(err, CircuitError::DuplicateOperand { qubit: 1 }));
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut c = Circuit::new(3);
        let err = c
            .try_push(Instruction::gate(Gate::CX, vec![Qubit::new(0)]))
            .unwrap_err();
        assert!(matches!(
            err,
            CircuitError::WrongArity {
                gate: "cx",
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn clbit_out_of_range_rejected() {
        let mut c = Circuit::with_clbits(2, 1);
        assert!(c
            .try_push(Instruction {
                kind: OpKind::Measure(Clbit::new(1)),
                qubits: vec![Qubit::new(0)],
            })
            .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid instruction")]
    fn push_panics_on_invalid() {
        let mut c = Circuit::new(1);
        c.cx(0, 1);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1);
        let inv = c.inverse();
        let gates: Vec<Gate> = inv.iter().filter_map(|i| i.as_gate()).collect();
        assert_eq!(gates, vec![Gate::CX, Gate::Tdg, Gate::H]);
    }

    #[test]
    fn active_qubits_excludes_untouched() {
        let mut c = Circuit::new(5);
        c.h(1).cx(1, 3);
        c.barrier_all();
        let active = c.active_qubits();
        assert_eq!(active, vec![Qubit::new(1), Qubit::new(3)]);
    }

    #[test]
    fn display_is_qasm_like() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure(0, 0);
        let text = c.to_string();
        assert!(text.contains("h q[0];"));
        assert!(text.contains("cx q[0], q[1];"));
        assert!(text.contains("measure q[0] -> c[0];"));
    }

    #[test]
    fn compacted_drops_inactive_qubits() {
        let mut c = Circuit::new(10);
        c.h(2).cx(2, 7).measure(7, 3);
        let (small, map) = c.compacted();
        assert_eq!(small.num_qubits(), 2);
        assert_eq!(map, vec![2, 7]);
        assert_eq!(small.num_clbits(), 10);
        // Structure preserved on renamed qubits.
        assert_eq!(
            small.instructions()[1].qubits,
            vec![Qubit::new(0), Qubit::new(1)]
        );
        match small.instructions()[2].kind {
            OpKind::Measure(cl) => assert_eq!(cl.index(), 3),
            ref other => panic!("expected measure, got {other:?}"),
        }
    }

    #[test]
    fn compacted_preserves_barriers_on_active_qubits() {
        let mut c = Circuit::new(5);
        c.h(1).barrier_all().x(3);
        let (small, map) = c.compacted();
        assert_eq!(map, vec![1, 3]);
        // The barrier survives restricted to active qubits.
        let barriers: Vec<_> = small
            .iter()
            .filter(|i| matches!(i.kind, OpKind::Barrier))
            .collect();
        assert_eq!(barriers.len(), 1);
        assert_eq!(barriers[0].qubits.len(), 2);
    }

    #[test]
    fn extend_from_appends() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }
}
