//! Measurement-outcome histograms.
//!
//! Every executor in the stack (ideal state-vector, noisy trajectory
//! machine, stabilizer samplers) reports results as [`Counts`]: a histogram
//! of classical bitstrings. The ADAPT metrics layer turns these into
//! probability distributions for TVD/fidelity computations.

use std::collections::BTreeMap;
use std::fmt;

/// Histogram of measured classical bitstrings.
///
/// Bitstrings are stored little-endian in a `u64`: bit `k` is classical bit
/// `k`. At most 64 classical bits are supported, far beyond the benchmark
/// sizes in the paper (≤ 10 measured qubits).
///
/// # Examples
///
/// ```
/// use qcirc::counts::Counts;
/// let mut counts = Counts::new(2);
/// counts.record(0b01);
/// counts.record(0b01);
/// counts.record(0b10);
/// assert_eq!(counts.total(), 3);
/// assert_eq!(counts.get(0b01), 2);
/// assert_eq!(counts.most_frequent(), Some(0b01));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counts {
    num_bits: usize,
    map: BTreeMap<u64, u64>,
    total: u64,
}

impl Counts {
    /// Creates an empty histogram over `num_bits` classical bits.
    ///
    /// # Panics
    ///
    /// Panics if `num_bits > 64`.
    pub fn new(num_bits: usize) -> Self {
        assert!(num_bits <= 64, "at most 64 classical bits supported");
        Counts {
            num_bits,
            map: BTreeMap::new(),
            total: 0,
        }
    }

    /// Number of classical bits per outcome.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Records one occurrence of `outcome`.
    pub fn record(&mut self, outcome: u64) {
        self.record_many(outcome, 1);
    }

    /// Records `n` occurrences of `outcome`.
    pub fn record_many(&mut self, outcome: u64, n: u64) {
        debug_assert!(
            self.num_bits == 64 || outcome < (1u64 << self.num_bits),
            "outcome {outcome:#b} exceeds {} bits",
            self.num_bits
        );
        if n == 0 {
            return;
        }
        *self.map.entry(outcome).or_insert(0) += n;
        self.total += n;
    }

    /// Total number of recorded shots.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for a specific outcome (0 when absent).
    pub fn get(&self, outcome: u64) -> u64 {
        self.map.get(&outcome).copied().unwrap_or(0)
    }

    /// Empirical probability of an outcome.
    pub fn probability(&self, outcome: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.get(outcome) as f64 / self.total as f64
        }
    }

    /// Iterates over `(outcome, count)` pairs in outcome order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of distinct outcomes observed.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// The modal outcome, or `None` when empty. Ties break toward the
    /// numerically smaller outcome.
    pub fn most_frequent(&self) -> Option<u64> {
        self.map
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&k, _)| k)
    }

    /// Converts to a normalized probability map over the observed outcomes.
    pub fn to_probabilities(&self) -> BTreeMap<u64, f64> {
        let t = self.total.max(1) as f64;
        self.map.iter().map(|(&k, &v)| (k, v as f64 / t)).collect()
    }

    /// Shannon entropy of the empirical distribution, in bits.
    ///
    /// ADAPT's seeded decoy circuits are designed to produce *low-entropy*
    /// outputs (§4.2.3) so that idling errors visibly perturb them.
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let t = self.total as f64;
        -self
            .map
            .values()
            .map(|&v| {
                let p = v as f64 / t;
                p * p.log2()
            })
            .sum::<f64>()
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics when bit widths differ.
    pub fn merge(&mut self, other: &Counts) {
        assert_eq!(
            self.num_bits, other.num_bits,
            "cannot merge histograms of different widths"
        );
        for (k, v) in other.iter() {
            self.record_many(k, v);
        }
    }

    /// Renders an outcome as a bitstring, most-significant bit first
    /// (Qiskit convention: classical bit 0 is the rightmost character).
    pub fn format_outcome(&self, outcome: u64) -> String {
        (0..self.num_bits)
            .rev()
            .map(|b| if outcome >> b & 1 == 1 { '1' } else { '0' })
            .collect()
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", self.format_outcome(k), v)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<u64> for Counts {
    /// Builds a 64-bit-wide histogram from raw outcomes. Use
    /// [`Counts::new`] + [`Counts::record`] when the width matters.
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut c = Counts::new(64);
        for o in iter {
            c.record(o);
        }
        c
    }
}

impl Extend<u64> for Counts {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for o in iter {
            self.record(o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = Counts::new(3);
        c.record(0);
        c.record_many(5, 9);
        assert_eq!(c.total(), 10);
        assert_eq!(c.get(5), 9);
        assert_eq!(c.get(1), 0);
        assert!((c.probability(5) - 0.9).abs() < 1e-12);
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.most_frequent(), Some(5));
    }

    #[test]
    fn empty_histogram_behaves() {
        let c = Counts::new(2);
        assert_eq!(c.total(), 0);
        assert_eq!(c.most_frequent(), None);
        assert_eq!(c.probability(0), 0.0);
        assert_eq!(c.entropy_bits(), 0.0);
    }

    #[test]
    fn entropy_of_uniform_and_point_mass() {
        let mut uniform = Counts::new(2);
        for o in 0..4 {
            uniform.record_many(o, 25);
        }
        assert!((uniform.entropy_bits() - 2.0).abs() < 1e-12);

        let mut point = Counts::new(2);
        point.record_many(3, 100);
        assert!(point.entropy_bits() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counts::new(2);
        a.record(1);
        let mut b = Counts::new(2);
        b.record(1);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.get(1), 2);
        assert_eq!(a.get(2), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_rejects_width_mismatch() {
        let mut a = Counts::new(2);
        a.merge(&Counts::new(3));
    }

    #[test]
    fn formatting_is_msb_first() {
        let c = Counts::new(4);
        assert_eq!(c.format_outcome(0b0011), "0011");
        assert_eq!(c.format_outcome(0b1000), "1000");
    }

    #[test]
    fn most_frequent_tie_breaks_low() {
        let mut c = Counts::new(2);
        c.record(2);
        c.record(1);
        assert_eq!(c.most_frequent(), Some(1));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut c: Counts = [1u64, 1, 3].into_iter().collect();
        c.extend([3u64, 3]);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(3), 3);
    }
}
