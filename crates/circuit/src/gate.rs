//! The gate set understood by every layer of the stack.
//!
//! The set covers the logical gates used by the ADAPT benchmarks (H, T, RZ,
//! CX, …), the IBMQ physical basis the transpiler lowers to
//! ({RZ, SX, X, CX}), and the Clifford subset the stabilizer simulator and
//! decoy-circuit generator rely on.

use crate::math::{Mat2, Mat4, C64};
use std::fmt;

/// A quantum gate, possibly parameterized by rotation angles (radians).
///
/// Two-qubit gates take their operands as (first, second); for [`Gate::CX`]
/// the first operand is the control.
///
/// # Examples
///
/// ```
/// use qcirc::gate::Gate;
/// assert_eq!(Gate::CX.arity(), 2);
/// assert!(Gate::S.is_clifford());
/// assert!(!Gate::T.is_clifford());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Identity.
    I,
    /// Pauli-X (bit flip).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z (phase flip).
    Z,
    /// Hadamard.
    H,
    /// Phase gate `diag(1, i)`.
    S,
    /// Inverse phase gate `diag(1, -i)`.
    Sdg,
    /// T gate `diag(1, e^{iπ/4})` (non-Clifford).
    T,
    /// Inverse T gate (non-Clifford).
    Tdg,
    /// Square root of X (IBM basis gate).
    SX,
    /// Inverse square root of X.
    SXdg,
    /// Rotation about the X axis by the given angle.
    RX(f64),
    /// Rotation about the Y axis by the given angle.
    RY(f64),
    /// Rotation about the Z axis by the given angle (virtual on IBM hardware).
    RZ(f64),
    /// Phase gate `diag(1, e^{iθ})` — Qiskit's `p`/`u1`.
    P(f64),
    /// General single-qubit gate `U(θ, φ, λ)` — Qiskit's `u`/`u3`.
    U(f64, f64, f64),
    /// Controlled-X; operand 0 is the control.
    CX,
    /// Controlled-Z (symmetric).
    CZ,
    /// SWAP (decomposes into 3 CX on hardware).
    Swap,
}

impl Gate {
    /// Number of qubit operands.
    pub fn arity(&self) -> usize {
        match self {
            Gate::CX | Gate::CZ | Gate::Swap => 2,
            _ => 1,
        }
    }

    /// The lowercase mnemonic used by the textual circuit format.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::SX => "sx",
            Gate::SXdg => "sxdg",
            Gate::RX(_) => "rx",
            Gate::RY(_) => "ry",
            Gate::RZ(_) => "rz",
            Gate::P(_) => "p",
            Gate::U(..) => "u",
            Gate::CX => "cx",
            Gate::CZ => "cz",
            Gate::Swap => "swap",
        }
    }

    /// Rotation parameters, if any.
    pub fn params(&self) -> Vec<f64> {
        match *self {
            Gate::RX(t) | Gate::RY(t) | Gate::RZ(t) | Gate::P(t) => vec![t],
            Gate::U(t, p, l) => vec![t, p, l],
            _ => Vec::new(),
        }
    }

    /// The inverse gate, `G⁻¹` such that `G·G⁻¹ = I` (up to global phase).
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::SX => Gate::SXdg,
            Gate::SXdg => Gate::SX,
            Gate::RX(t) => Gate::RX(-t),
            Gate::RY(t) => Gate::RY(-t),
            Gate::RZ(t) => Gate::RZ(-t),
            Gate::P(t) => Gate::P(-t),
            Gate::U(t, p, l) => Gate::U(-t, -l, -p),
            g => g, // I, X, Y, Z, H, CX, CZ, Swap are involutions
        }
    }

    /// True when the gate is in the Clifford group (exactly, not just within
    /// tolerance — parameterized rotations at Clifford angles are reported by
    /// [`Gate::is_clifford_approx`] instead).
    pub fn is_clifford(&self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::X
                | Gate::Y
                | Gate::Z
                | Gate::H
                | Gate::S
                | Gate::Sdg
                | Gate::SX
                | Gate::SXdg
                | Gate::CX
                | Gate::CZ
                | Gate::Swap
        )
    }

    /// True when the gate is Clifford, or a rotation whose angle lands on a
    /// Clifford multiple of π/2 within `tol` radians.
    pub fn is_clifford_approx(&self, tol: f64) -> bool {
        fn near_half_pi_multiple(t: f64, tol: f64) -> bool {
            let r = t.rem_euclid(std::f64::consts::FRAC_PI_2);
            r < tol || (std::f64::consts::FRAC_PI_2 - r) < tol
        }
        match *self {
            Gate::RX(t) | Gate::RY(t) | Gate::RZ(t) | Gate::P(t) => near_half_pi_multiple(t, tol),
            Gate::U(t, p, l) => {
                near_half_pi_multiple(t, tol)
                    && near_half_pi_multiple(p, tol)
                    && near_half_pi_multiple(l, tol)
            }
            _ => self.is_clifford(),
        }
    }

    /// The 2×2 unitary of a single-qubit gate, or `None` for two-qubit gates.
    pub fn unitary1(&self) -> Option<Mat2> {
        use std::f64::consts::FRAC_1_SQRT_2 as R2;
        let c = C64::real;
        let m = match *self {
            Gate::I => Mat2::identity(),
            Gate::X => Mat2::new([[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]),
            Gate::Y => Mat2::new([[C64::ZERO, -C64::I], [C64::I, C64::ZERO]]),
            Gate::Z => Mat2::new([[C64::ONE, C64::ZERO], [C64::ZERO, -C64::ONE]]),
            Gate::H => Mat2::new([[c(R2), c(R2)], [c(R2), c(-R2)]]),
            Gate::S => Mat2::new([[C64::ONE, C64::ZERO], [C64::ZERO, C64::I]]),
            Gate::Sdg => Mat2::new([[C64::ONE, C64::ZERO], [C64::ZERO, -C64::I]]),
            Gate::T => Mat2::new([
                [C64::ONE, C64::ZERO],
                [C64::ZERO, C64::cis(std::f64::consts::FRAC_PI_4)],
            ]),
            Gate::Tdg => Mat2::new([
                [C64::ONE, C64::ZERO],
                [C64::ZERO, C64::cis(-std::f64::consts::FRAC_PI_4)],
            ]),
            Gate::SX => Mat2::new([
                [C64::new(0.5, 0.5), C64::new(0.5, -0.5)],
                [C64::new(0.5, -0.5), C64::new(0.5, 0.5)],
            ]),
            Gate::SXdg => Mat2::new([
                [C64::new(0.5, -0.5), C64::new(0.5, 0.5)],
                [C64::new(0.5, 0.5), C64::new(0.5, -0.5)],
            ]),
            Gate::RX(t) => {
                let (ch, sh) = ((t / 2.0).cos(), (t / 2.0).sin());
                Mat2::new([[c(ch), C64::new(0.0, -sh)], [C64::new(0.0, -sh), c(ch)]])
            }
            Gate::RY(t) => {
                let (ch, sh) = ((t / 2.0).cos(), (t / 2.0).sin());
                Mat2::new([[c(ch), c(-sh)], [c(sh), c(ch)]])
            }
            Gate::RZ(t) => Mat2::new([
                [C64::cis(-t / 2.0), C64::ZERO],
                [C64::ZERO, C64::cis(t / 2.0)],
            ]),
            Gate::P(t) => Mat2::new([[C64::ONE, C64::ZERO], [C64::ZERO, C64::cis(t)]]),
            Gate::U(t, p, l) => {
                let (ch, sh) = ((t / 2.0).cos(), (t / 2.0).sin());
                Mat2::new([
                    [c(ch), C64::cis(l).scale(-sh)],
                    [C64::cis(p).scale(sh), C64::cis(p + l).scale(ch)],
                ])
            }
            Gate::CX | Gate::CZ | Gate::Swap => return None,
        };
        Some(m)
    }

    /// The 4×4 unitary of a two-qubit gate in the little-endian basis
    /// `|b1 b0⟩ ↦ index 2·b1 + b0`, where `b0` belongs to the first operand
    /// (the control for [`Gate::CX`]). `None` for single-qubit gates.
    pub fn unitary2(&self) -> Option<Mat4> {
        let o = C64::ONE;
        let z = C64::ZERO;
        let m = match self {
            // Control = operand 0 = low bit. |b1 b0⟩: flip b1 when b0 = 1.
            Gate::CX => Mat4::new([[o, z, z, z], [z, z, z, o], [z, z, o, z], [z, o, z, z]]),
            Gate::CZ => Mat4::new([[o, z, z, z], [z, o, z, z], [z, z, o, z], [z, z, z, -o]]),
            Gate::Swap => Mat4::new([[o, z, z, z], [z, z, o, z], [z, o, z, z], [z, z, z, o]]),
            _ => return None,
        };
        Some(m)
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let joined: Vec<String> = params.iter().map(|p| format!("{p:.6}")).collect();
            write!(f, "{}({})", self.name(), joined.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    const TOL: f64 = 1e-10;

    fn all_1q_gates() -> Vec<Gate> {
        vec![
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::SX,
            Gate::SXdg,
            Gate::RX(0.3),
            Gate::RY(1.1),
            Gate::RZ(-0.7),
            Gate::P(2.3),
            Gate::U(0.5, 1.2, -0.4),
        ]
    }

    #[test]
    fn every_1q_unitary_is_unitary() {
        for g in all_1q_gates() {
            let u = g.unitary1().unwrap();
            assert!(u.is_unitary(TOL), "{g:?} not unitary");
        }
    }

    #[test]
    fn every_2q_unitary_is_unitary() {
        for g in [Gate::CX, Gate::CZ, Gate::Swap] {
            assert!(g.unitary2().unwrap().is_unitary(TOL));
            assert!(g.unitary1().is_none());
        }
    }

    #[test]
    fn inverse_composes_to_identity_up_to_phase() {
        let id = Mat2::identity();
        for g in all_1q_gates() {
            let u = g.unitary1().unwrap();
            let v = g.inverse().unitary1().unwrap();
            assert!(
                (u * v).phase_dist(&id) < 1e-9,
                "{g:?} inverse wrong: {}",
                u * v
            );
        }
    }

    #[test]
    fn sx_squared_is_x() {
        let sx = Gate::SX.unitary1().unwrap();
        let x = Gate::X.unitary1().unwrap();
        assert!((sx * sx).phase_dist(&x) < TOL);
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        let s = Gate::S.unitary1().unwrap();
        let t = Gate::T.unitary1().unwrap();
        assert!((s * s).phase_dist(&Gate::Z.unitary1().unwrap()) < TOL);
        assert!((t * t).phase_dist(&s) < TOL);
    }

    #[test]
    fn rz_pi_matches_z_up_to_phase() {
        let rz = Gate::RZ(PI).unitary1().unwrap();
        let z = Gate::Z.unitary1().unwrap();
        assert!(rz.phase_dist(&z) < TOL);
        // But not exactly equal (RZ carries a global phase of e^{-iπ/2}).
        assert!(rz.op_norm_dist(&z) > 0.5);
    }

    #[test]
    fn u_gate_special_cases() {
        // U(π/2, 0, π) = H up to phase.
        let u2 = Gate::U(FRAC_PI_2, 0.0, PI).unitary1().unwrap();
        assert!(u2.phase_dist(&Gate::H.unitary1().unwrap()) < TOL);
        // U(0, 0, λ) = P(λ).
        let p = Gate::U(0.0, 0.0, 0.9).unitary1().unwrap();
        assert!(p.phase_dist(&Gate::P(0.9).unitary1().unwrap()) < TOL);
        // U(θ, -π/2, π/2) = RX(θ).
        let rx = Gate::U(0.7, -FRAC_PI_2, FRAC_PI_2).unitary1().unwrap();
        assert!(rx.phase_dist(&Gate::RX(0.7).unitary1().unwrap()) < TOL);
    }

    #[test]
    fn cx_truth_table() {
        let cx = Gate::CX.unitary2().unwrap();
        use crate::math::C64;
        // Control is the LOW bit: |b1 b0⟩ = |01⟩ (index 1) → |11⟩ (index 3).
        let v = cx.mul_vec([C64::ZERO, C64::ONE, C64::ZERO, C64::ZERO]);
        assert!(v[3].approx_eq(C64::ONE, TOL));
        // |10⟩ (index 2) is untouched.
        let v = cx.mul_vec([C64::ZERO, C64::ZERO, C64::ONE, C64::ZERO]);
        assert!(v[2].approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn clifford_classification() {
        for g in [Gate::X, Gate::H, Gate::S, Gate::CX, Gate::CZ, Gate::Swap] {
            assert!(g.is_clifford(), "{g:?}");
        }
        for g in [Gate::T, Gate::Tdg, Gate::RZ(0.3), Gate::U(0.1, 0.2, 0.3)] {
            assert!(!g.is_clifford(), "{g:?}");
        }
        assert!(Gate::RZ(FRAC_PI_2).is_clifford_approx(1e-9));
        assert!(Gate::RZ(PI).is_clifford_approx(1e-9));
        assert!(!Gate::RZ(FRAC_PI_4).is_clifford_approx(1e-9));
        assert!(Gate::U(FRAC_PI_2, 0.0, PI).is_clifford_approx(1e-9));
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(Gate::H.to_string(), "h");
        assert_eq!(Gate::RZ(FRAC_PI_4).to_string(), "rz(0.785398)");
    }
}
