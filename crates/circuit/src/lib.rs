//! # qcirc — quantum circuit IR and gate algebra
//!
//! The foundation crate of the ADAPT reproduction stack. It provides:
//!
//! - [`math`]: allocation-free complex scalars and 2×2/4×4 matrices, with
//!   the operator-norm machinery behind nearest-Clifford replacement;
//! - [`gate`]: the gate set (logical gates, the IBM physical basis
//!   {RZ, SX, X, CX}, and the Clifford subset);
//! - [`circuit`]: the [`Circuit`] intermediate representation consumed by
//!   the transpiler, the simulators and the ADAPT pass;
//! - [`clifford`]: the 24 single-qubit Clifford classes and the
//!   nearest-Clifford search used to build decoy circuits.
//!
//! # Examples
//!
//! ```
//! use qcirc::{Circuit, Gate};
//!
//! // A 2-qubit Bell-pair circuit.
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1).measure_all();
//! assert_eq!(c.two_qubit_gate_count(), 1);
//!
//! // Nearest-Clifford replacement of a T gate (decoy construction).
//! let classes = qcirc::clifford::single_qubit_cliffords();
//! let n = qcirc::clifford::cliffordize_gate(&classes, Gate::T);
//! assert!(n.distance > 0.0);
//! ```

#![warn(missing_docs)]

pub mod circuit;
pub mod clifford;
pub mod counts;
pub mod draw;
pub mod gate;
pub mod math;
pub mod qasm;

pub use circuit::{Circuit, CircuitError, Clbit, Instruction, OpKind, Qubit};
pub use counts::Counts;
pub use gate::Gate;
