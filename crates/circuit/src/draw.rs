//! ASCII circuit rendering for terminals and docs.
//!
//! One row per qubit, one column per circuit "moment" (greedy left
//! alignment, like Qiskit's text drawer):
//!
//! ```text
//! q0: ─ H ──●───────── M ─
//!           │
//! q1: ────── X ── T ── M ─
//! ```

use crate::circuit::{Circuit, OpKind};
use crate::gate::Gate;

/// Renders the circuit as fixed-width ASCII art.
///
/// # Examples
///
/// ```
/// use qcirc::{draw, Circuit};
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).measure_all();
/// let art = draw::draw(&c);
/// assert!(art.contains("q0:"));
/// assert!(art.contains("●")); // the CX control
/// ```
pub fn draw(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    // Assign each instruction to the earliest column where all its qubits
    // are free.
    let mut col_of = Vec::with_capacity(circuit.len());
    let mut next_free = vec![0usize; n];
    let mut num_cols = 0;
    for instr in circuit.iter() {
        let col = instr
            .qubits
            .iter()
            .map(|q| next_free[q.index()])
            .max()
            .unwrap_or(0);
        col_of.push(col);
        for q in &instr.qubits {
            next_free[q.index()] = col + 1;
        }
        num_cols = num_cols.max(col + 1);
    }

    // Cell labels per (qubit, column); vertical links per column.
    let mut cells: Vec<Vec<Option<String>>> = vec![vec![None; num_cols]; n];
    let mut links: Vec<Vec<bool>> = vec![vec![false; num_cols]; n.saturating_sub(1)];
    for (instr, &col) in circuit.iter().zip(&col_of) {
        match &instr.kind {
            OpKind::Gate(g) if g.arity() == 2 => {
                let a = instr.qubits[0].index();
                let b = instr.qubits[1].index();
                let (la, lb) = match g {
                    Gate::CX => ("●".to_string(), "X".to_string()),
                    Gate::CZ => ("●".to_string(), "●".to_string()),
                    Gate::Swap => ("x".to_string(), "x".to_string()),
                    _ => (g.name().to_uppercase(), g.name().to_uppercase()),
                };
                cells[a][col] = Some(la);
                cells[b][col] = Some(lb);
                for link_row in links.iter_mut().take(a.max(b)).skip(a.min(b)) {
                    link_row[col] = true;
                }
            }
            OpKind::Gate(g) => {
                let label = match g {
                    Gate::RX(t) | Gate::RY(t) | Gate::RZ(t) | Gate::P(t) => {
                        format!("{}({t:.2})", g.name().to_uppercase())
                    }
                    Gate::U(t, p, l) => format!("U({t:.2},{p:.2},{l:.2})"),
                    _ => short_name(*g),
                };
                cells[instr.qubits[0].index()][col] = Some(label);
            }
            OpKind::Measure(c) => {
                cells[instr.qubits[0].index()][col] = Some(format!("M→c{}", c.index()));
            }
            OpKind::Reset => {
                cells[instr.qubits[0].index()][col] = Some("|0⟩".to_string());
            }
            OpKind::Delay(ns) => {
                cells[instr.qubits[0].index()][col] = Some(format!("D{:.0}", ns / 1000.0));
            }
            OpKind::Barrier => {
                for q in &instr.qubits {
                    cells[q.index()][col] = Some("░".to_string());
                }
            }
        }
    }

    // Column widths.
    let widths: Vec<usize> = (0..num_cols)
        .map(|col| {
            cells
                .iter()
                .filter_map(|row| row[col].as_ref())
                .map(|s| s.chars().count())
                .max()
                .unwrap_or(1)
        })
        .collect();

    let label_width = format!("q{}", n.saturating_sub(1)).len() + 2;
    let mut out = String::new();
    for q in 0..n {
        // Wire row.
        let mut line = format!("{:<label_width$}", format!("q{q}:"));
        for (col, w) in widths.iter().enumerate() {
            line.push('─');
            match &cells[q][col] {
                Some(s) => {
                    let pad = w - s.chars().count();
                    let left = pad / 2;
                    line.push_str(&" ".repeat(left));
                    line.push_str(s);
                    line.push_str(&" ".repeat(pad - left));
                }
                None => line.push_str(&"─".repeat(*w)),
            }
            line.push('─');
        }
        out.push_str(line.trim_end());
        out.push('\n');
        // Link row.
        if q + 1 < n {
            let mut line = " ".repeat(label_width);
            for (col, w) in widths.iter().enumerate() {
                line.push(' ');
                let mid = w / 2;
                for i in 0..*w {
                    line.push(if links[q][col] && i == mid {
                        '│'
                    } else {
                        ' '
                    });
                }
                line.push(' ');
            }
            let trimmed = line.trim_end();
            if !trimmed.is_empty() {
                out.push_str(trimmed);
            }
            out.push('\n');
        }
    }
    out
}

fn short_name(g: Gate) -> String {
    match g {
        Gate::I => "I".into(),
        Gate::X => "X".into(),
        Gate::Y => "Y".into(),
        Gate::Z => "Z".into(),
        Gate::H => "H".into(),
        Gate::S => "S".into(),
        Gate::Sdg => "S†".into(),
        Gate::T => "T".into(),
        Gate::Tdg => "T†".into(),
        Gate::SX => "√X".into(),
        Gate::SXdg => "√X†".into(),
        _ => g.name().to_uppercase(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_circuit_renders_expected_shapes() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let art = draw(&c);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].starts_with("q0:"));
        assert!(lines[0].contains('H'));
        assert!(lines[0].contains('●'));
        assert!(lines[2].contains('X'));
        assert!(lines[1].contains('│'), "control link missing: {art}");
        assert!(art.contains("M→c0"));
        assert!(art.contains("M→c1"));
    }

    #[test]
    fn parallel_gates_share_a_column() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        let art = draw(&c);
        let lines: Vec<&str> = art.lines().collect();
        let col0 = lines[0].find('H').unwrap();
        let col1 = lines[2].find('H').unwrap();
        assert_eq!(col0, col1, "parallel H gates should align:\n{art}");
    }

    #[test]
    fn dependent_gates_get_later_columns() {
        let mut c = Circuit::new(1);
        c.h(0).x(0);
        let art = draw(&c);
        let line = art.lines().next().unwrap();
        assert!(line.find('H').unwrap() < line.find('X').unwrap());
    }

    #[test]
    fn rotations_show_angles() {
        let mut c = Circuit::new(1);
        c.rz(0.5, 0);
        assert!(draw(&c).contains("RZ(0.50)"));
    }

    #[test]
    fn barriers_and_delays_render() {
        let mut c = Circuit::new(2);
        c.delay(1500.0, 0).barrier_all();
        let art = draw(&c);
        assert!(art.contains("D2")); // 1.5µs rounds to 2
        assert!(art.contains('░'));
    }

    #[test]
    fn swap_and_cz_symbols() {
        let mut c = Circuit::new(3);
        c.swap(0, 2).cz(0, 1);
        let art = draw(&c);
        assert_eq!(art.matches('x').count(), 2);
        assert_eq!(art.matches('●').count(), 2);
    }

    #[test]
    fn row_count_matches_register() {
        let mut c = Circuit::new(4);
        c.h(0);
        let art = draw(&c);
        assert_eq!(art.lines().filter(|l| l.contains(':')).count(), 4);
    }
}
