//! OpenQASM 2.0 export and import.
//!
//! Interoperability with the wider tooling ecosystem (Qiskit, QASMBench —
//! the suites the paper draws its workloads from): [`to_qasm`] emits any
//! circuit in this stack's gate set; [`from_qasm`] parses the subset of
//! OpenQASM 2.0 those circuits round-trip through (single quantum and
//! classical register, standard-library gates).

use crate::circuit::{Circuit, Clbit, Instruction, OpKind, Qubit};
use crate::gate::Gate;
use std::fmt::Write as _;

/// Serializes a circuit as OpenQASM 2.0.
///
/// Delays become `barrier`-free comments (QASM 2.0 has no timed delay);
/// everything else maps to the standard library.
///
/// # Examples
///
/// ```
/// use qcirc::{qasm, Circuit};
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).measure_all();
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("cx q[0], q[1];"));
/// let back = qasm::from_qasm(&text).unwrap();
/// assert_eq!(back, c);
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "OPENQASM 2.0;");
    let _ = writeln!(out, "include \"qelib1.inc\";");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    let _ = writeln!(out, "creg c[{}];", circuit.num_clbits());
    for instr in circuit.iter() {
        let qs: Vec<String> = instr
            .qubits
            .iter()
            .map(|q| format!("q[{}]", q.index()))
            .collect();
        match &instr.kind {
            OpKind::Gate(g) => {
                let name = qasm_gate_name(*g);
                let params = g.params();
                if params.is_empty() {
                    let _ = writeln!(out, "{} {};", name, qs.join(", "));
                } else {
                    // Rust's Display prints the shortest exact round-trip form.
                    let ps: Vec<String> = params.iter().map(|p| format!("{p}")).collect();
                    let _ = writeln!(out, "{}({}) {};", name, ps.join(","), qs.join(", "));
                }
            }
            OpKind::Measure(c) => {
                let _ = writeln!(out, "measure {} -> c[{}];", qs[0], c.index());
            }
            OpKind::Reset => {
                let _ = writeln!(out, "reset {};", qs[0]);
            }
            OpKind::Delay(ns) => {
                // QASM 2.0 has no delay; annotate so round-trips warn.
                let _ = writeln!(out, "// delay {ns:.1} ns on {}", qs[0]);
            }
            OpKind::Barrier => {
                let _ = writeln!(out, "barrier {};", qs.join(", "));
            }
        }
    }
    out
}

fn qasm_gate_name(g: Gate) -> &'static str {
    match g {
        Gate::I => "id",
        Gate::X => "x",
        Gate::Y => "y",
        Gate::Z => "z",
        Gate::H => "h",
        Gate::S => "s",
        Gate::Sdg => "sdg",
        Gate::T => "t",
        Gate::Tdg => "tdg",
        Gate::SX => "sx",
        Gate::SXdg => "sxdg",
        Gate::RX(_) => "rx",
        Gate::RY(_) => "ry",
        Gate::RZ(_) => "rz",
        Gate::P(_) => "p",
        Gate::U(..) => "u",
        Gate::CX => "cx",
        Gate::CZ => "cz",
        Gate::Swap => "swap",
    }
}

/// Errors raised by the QASM parser.
#[derive(Debug, Clone, PartialEq)]
pub enum QasmError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The file declares something this importer does not support.
    Unsupported {
        /// 1-based line number.
        line: usize,
        /// The unsupported construct.
        construct: String,
    },
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QasmError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            QasmError::Unsupported { line, construct } => {
                write!(f, "line {line}: unsupported construct {construct}")
            }
        }
    }
}

impl std::error::Error for QasmError {}

/// Parses the OpenQASM 2.0 subset produced by [`to_qasm`]: one `qreg`,
/// one `creg`, standard-library gates, `measure`, `reset`, `barrier`.
///
/// # Errors
///
/// Returns [`QasmError`] on malformed lines or unsupported constructs
/// (custom gate definitions, conditionals, multiple registers).
pub fn from_qasm(text: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    let mut num_qubits = 0usize;
    let mut num_clbits = 0usize;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stmt = raw.split("//").next().unwrap_or("").trim();
        if stmt.is_empty() {
            continue;
        }
        for piece in stmt.split(';') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            if piece.starts_with("OPENQASM") || piece.starts_with("include") {
                continue;
            }
            if let Some(rest) = piece.strip_prefix("qreg") {
                num_qubits = parse_reg_size(rest, line)?;
                continue;
            }
            if let Some(rest) = piece.strip_prefix("creg") {
                num_clbits = parse_reg_size(rest, line)?;
                continue;
            }
            if piece.starts_with("gate ") || piece.starts_with("if") || piece.starts_with("opaque")
            {
                return Err(QasmError::Unsupported {
                    line,
                    construct: piece.split_whitespace().next().unwrap_or("?").to_string(),
                });
            }
            let c = circuit.get_or_insert_with(|| Circuit::with_clbits(num_qubits, num_clbits));
            parse_statement(c, piece, line)?;
        }
    }
    Ok(circuit.unwrap_or_else(|| Circuit::with_clbits(num_qubits, num_clbits)))
}

fn parse_reg_size(rest: &str, line: usize) -> Result<usize, QasmError> {
    let rest = rest.trim();
    let open = rest.find('[').ok_or_else(|| QasmError::Syntax {
        line,
        message: "expected register size".into(),
    })?;
    let close = rest.find(']').ok_or_else(|| QasmError::Syntax {
        line,
        message: "unterminated register size".into(),
    })?;
    rest[open + 1..close].parse().map_err(|_| QasmError::Syntax {
        line,
        message: "bad register size".into(),
    })
}

fn parse_index(token: &str, line: usize) -> Result<u32, QasmError> {
    let open = token.find('[').ok_or_else(|| QasmError::Syntax {
        line,
        message: format!("expected indexed operand, got {token:?}"),
    })?;
    let close = token.find(']').ok_or_else(|| QasmError::Syntax {
        line,
        message: "unterminated index".into(),
    })?;
    token[open + 1..close]
        .parse()
        .map_err(|_| QasmError::Syntax {
            line,
            message: format!("bad index in {token:?}"),
        })
}

fn parse_statement(c: &mut Circuit, stmt: &str, line: usize) -> Result<(), QasmError> {
    if let Some(rest) = stmt.strip_prefix("measure") {
        let mut parts = rest.split("->");
        let q = parse_index(parts.next().unwrap_or("").trim(), line)?;
        let cl = parse_index(parts.next().unwrap_or("").trim(), line)?;
        c.try_push(Instruction {
            kind: OpKind::Measure(Clbit::new(cl)),
            qubits: vec![Qubit::new(q)],
        })
        .map_err(|e| QasmError::Syntax {
            line,
            message: e.to_string(),
        })?;
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("reset") {
        let q = parse_index(rest.trim(), line)?;
        c.try_push(Instruction {
            kind: OpKind::Reset,
            qubits: vec![Qubit::new(q)],
        })
        .map_err(|e| QasmError::Syntax {
            line,
            message: e.to_string(),
        })?;
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("barrier") {
        let qubits: Result<Vec<Qubit>, QasmError> = rest
            .split(',')
            .map(|t| parse_index(t.trim(), line).map(Qubit::new))
            .collect();
        c.try_push(Instruction {
            kind: OpKind::Barrier,
            qubits: qubits?,
        })
        .map_err(|e| QasmError::Syntax {
            line,
            message: e.to_string(),
        })?;
        return Ok(());
    }
    // Gate: name[(params)] operands.
    let (head, operands) = match stmt.find(|ch: char| ch.is_whitespace()) {
        Some(i) => stmt.split_at(i),
        None => {
            return Err(QasmError::Syntax {
                line,
                message: format!("bare statement {stmt:?}"),
            })
        }
    };
    let (name, params) = match head.find('(') {
        Some(i) => {
            let close = head.rfind(')').ok_or_else(|| QasmError::Syntax {
                line,
                message: "unterminated parameter list".into(),
            })?;
            let params: Result<Vec<f64>, _> = head[i + 1..close]
                .split(',')
                .map(|p| p.trim().parse::<f64>())
                .collect();
            (
                &head[..i],
                params.map_err(|_| QasmError::Syntax {
                    line,
                    message: "bad gate parameter".into(),
                })?,
            )
        }
        None => (head, Vec::new()),
    };
    let qubits: Result<Vec<u32>, QasmError> = operands
        .split(',')
        .map(|t| parse_index(t.trim(), line))
        .collect();
    let qubits = qubits?;
    let gate = gate_from_name(name, &params).ok_or_else(|| QasmError::Unsupported {
        line,
        construct: name.to_string(),
    })?;
    c.try_push(Instruction::gate(
        gate,
        qubits.into_iter().map(Qubit::new).collect(),
    ))
    .map_err(|e| QasmError::Syntax {
        line,
        message: e.to_string(),
    })
}

fn gate_from_name(name: &str, params: &[f64]) -> Option<Gate> {
    let g = match (name, params) {
        ("id", []) => Gate::I,
        ("x", []) => Gate::X,
        ("y", []) => Gate::Y,
        ("z", []) => Gate::Z,
        ("h", []) => Gate::H,
        ("s", []) => Gate::S,
        ("sdg", []) => Gate::Sdg,
        ("t", []) => Gate::T,
        ("tdg", []) => Gate::Tdg,
        ("sx", []) => Gate::SX,
        ("sxdg", []) => Gate::SXdg,
        ("rx", [t]) => Gate::RX(*t),
        ("ry", [t]) => Gate::RY(*t),
        ("rz", [t]) => Gate::RZ(*t),
        ("p", [t]) | ("u1", [t]) => Gate::P(*t),
        ("u", [t, p, l]) | ("u3", [t, p, l]) => Gate::U(*t, *p, *l),
        ("cx", []) => Gate::CX,
        ("cz", []) => Gate::CZ,
        ("swap", []) => Gate::Swap,
        _ => return None,
    };
    Some(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0)
            .t(1)
            .rz(0.375, 2)
            .cx(0, 1)
            .cz(1, 2)
            .swap(0, 2)
            .barrier(&[0, 1])
            .measure(0, 0)
            .measure(1, 2);
        c
    }

    #[test]
    fn roundtrip_preserves_circuit_exactly() {
        let c = sample();
        let text = to_qasm(&c);
        let back = from_qasm(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn header_and_registers_emitted() {
        let text = to_qasm(&sample());
        assert!(text.starts_with("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("creg c[3];"));
    }

    #[test]
    fn parameterized_gates_roundtrip_with_precision() {
        let mut c = Circuit::new(1);
        c.rz(std::f64::consts::PI / 7.0, 0)
            .rx(-1.25, 0)
            .gate(Gate::U(0.1, 0.2, 0.3), &[0]);
        let back = from_qasm(&to_qasm(&c)).unwrap();
        for (a, b) in c.iter().zip(back.iter()) {
            match (a.as_gate(), b.as_gate()) {
                (Some(ga), Some(gb)) => {
                    for (pa, pb) in ga.params().iter().zip(gb.params().iter()) {
                        assert!((pa - pb).abs() < 1e-10);
                    }
                }
                other => panic!("gate mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn parses_qiskit_style_u1_u3_aliases() {
        let text = "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nu1(0.5) q[0];\nu3(0.1,0.2,0.3) q[0];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 2);
        assert!(matches!(c.instructions()[0].as_gate(), Some(Gate::P(t)) if (t - 0.5).abs() < 1e-12));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "OPENQASM 2.0;\n// a comment\nqreg q[2];\ncreg c[2];\n\nh q[0]; // trailing\ncx q[0], q[1];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn unsupported_constructs_reported_with_line() {
        let text = "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\ngate foo a { x a; }\n";
        match from_qasm(text).unwrap_err() {
            QasmError::Unsupported { line, construct } => {
                assert_eq!(line, 4);
                assert_eq!(construct, "gate");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_reported_with_line() {
        let text = "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\ncx q[0] q[1];\n";
        assert!(matches!(
            from_qasm(text),
            Err(QasmError::Syntax { line: 4, .. })
        ));
    }

    #[test]
    fn out_of_range_operand_rejected() {
        let text = "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nx q[5];\n";
        assert!(from_qasm(text).is_err());
    }

    #[test]
    fn semantics_preserved_through_roundtrip() {
        let c = benchmarks_shape();
        let back = from_qasm(&to_qasm(&c)).unwrap();
        assert_eq!(c, back);
    }

    fn benchmarks_shape() -> Circuit {
        // A QFT-like circuit with every gate family.
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q);
            c.p(0.3 * (q as f64 + 1.0), q);
        }
        c.cx(0, 1).cx(1, 2).cx(2, 3);
        c.sx(0).sdg(1).tdg(2).y(3);
        c.measure_all();
        c
    }
}
