//! OpenQASM 2.0 export and import.
//!
//! Interoperability with the wider tooling ecosystem (Qiskit, QASMBench —
//! the suites the paper draws its workloads from): [`to_qasm`] emits any
//! circuit in this stack's gate set; [`from_qasm`] parses the subset of
//! OpenQASM 2.0 those circuits round-trip through (single quantum and
//! classical register, standard-library gates).

use crate::circuit::{Circuit, Clbit, Instruction, OpKind, Qubit};
use crate::gate::Gate;
use std::fmt::Write as _;

/// Serializes a circuit as OpenQASM 2.0.
///
/// Delays become `barrier`-free comments (QASM 2.0 has no timed delay);
/// everything else maps to the standard library.
///
/// # Examples
///
/// ```
/// use qcirc::{qasm, Circuit};
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).measure_all();
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("cx q[0], q[1];"));
/// let back = qasm::from_qasm(&text).unwrap();
/// assert_eq!(back, c);
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "OPENQASM 2.0;");
    let _ = writeln!(out, "include \"qelib1.inc\";");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    let _ = writeln!(out, "creg c[{}];", circuit.num_clbits());
    for instr in circuit.iter() {
        let qs: Vec<String> = instr
            .qubits
            .iter()
            .map(|q| format!("q[{}]", q.index()))
            .collect();
        match &instr.kind {
            OpKind::Gate(g) => {
                let name = qasm_gate_name(*g);
                let params = g.params();
                if params.is_empty() {
                    let _ = writeln!(out, "{} {};", name, qs.join(", "));
                } else {
                    // Rust's Display prints the shortest exact round-trip form.
                    let ps: Vec<String> = params.iter().map(|p| format!("{p}")).collect();
                    let _ = writeln!(out, "{}({}) {};", name, ps.join(","), qs.join(", "));
                }
            }
            OpKind::Measure(c) => {
                let _ = writeln!(out, "measure {} -> c[{}];", qs[0], c.index());
            }
            OpKind::Reset => {
                let _ = writeln!(out, "reset {};", qs[0]);
            }
            OpKind::Delay(ns) => {
                // QASM 2.0 has no delay; annotate so round-trips warn.
                let _ = writeln!(out, "// delay {ns:.1} ns on {}", qs[0]);
            }
            OpKind::Barrier => {
                let _ = writeln!(out, "barrier {};", qs.join(", "));
            }
        }
    }
    out
}

fn qasm_gate_name(g: Gate) -> &'static str {
    match g {
        Gate::I => "id",
        Gate::X => "x",
        Gate::Y => "y",
        Gate::Z => "z",
        Gate::H => "h",
        Gate::S => "s",
        Gate::Sdg => "sdg",
        Gate::T => "t",
        Gate::Tdg => "tdg",
        Gate::SX => "sx",
        Gate::SXdg => "sxdg",
        Gate::RX(_) => "rx",
        Gate::RY(_) => "ry",
        Gate::RZ(_) => "rz",
        Gate::P(_) => "p",
        Gate::U(..) => "u",
        Gate::CX => "cx",
        Gate::CZ => "cz",
        Gate::Swap => "swap",
    }
}

/// Errors raised by the QASM parser, located by line and column.
#[derive(Debug, Clone, PartialEq)]
pub enum QasmError {
    /// A statement could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the offending token.
        column: usize,
        /// What went wrong.
        message: String,
    },
    /// The file declares something this importer does not support.
    Unsupported {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the construct.
        column: usize,
        /// The unsupported construct.
        construct: String,
    },
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QasmError::Syntax {
                line,
                column,
                message,
            } => write!(f, "line {line}, column {column}: {message}"),
            QasmError::Unsupported {
                line,
                column,
                construct,
            } => {
                write!(
                    f,
                    "line {line}, column {column}: unsupported construct {construct}"
                )
            }
        }
    }
}

impl std::error::Error for QasmError {}

/// Source location of the statement being parsed; locates error tokens by
/// their offset inside the statement slice.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    /// 1-based line number.
    line: usize,
    /// 1-based column where the statement starts.
    col: usize,
    /// The statement slice (tokens passed to error helpers must be
    /// subslices of it for exact columns; anything else falls back to the
    /// statement start).
    stmt: &'a str,
}

impl<'a> Ctx<'a> {
    /// Column of `token` within the source line.
    fn col_of(&self, token: &str) -> usize {
        let base = self.stmt.as_ptr() as usize;
        let tok = token.as_ptr() as usize;
        if tok >= base && tok <= base + self.stmt.len() {
            self.col + (tok - base)
        } else {
            self.col
        }
    }

    fn syntax(&self, token: &str, message: impl Into<String>) -> QasmError {
        QasmError::Syntax {
            line: self.line,
            column: self.col_of(token),
            message: message.into(),
        }
    }

    fn unsupported(&self, token: &str, construct: impl Into<String>) -> QasmError {
        QasmError::Unsupported {
            line: self.line,
            column: self.col_of(token),
            construct: construct.into(),
        }
    }
}

/// Parses the OpenQASM 2.0 subset produced by [`to_qasm`]: one `qreg`,
/// one `creg`, standard-library gates, `measure`, `reset`, `barrier`.
///
/// # Errors
///
/// Returns [`QasmError`] on malformed lines or unsupported constructs
/// (custom gate definitions, conditionals, multiple registers), located
/// by line and column.
pub fn from_qasm(text: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    let mut num_qubits = 0usize;
    let mut num_clbits = 0usize;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = raw.split("//").next().unwrap_or("");
        let mut offset = 0usize;
        for piece_raw in code.split(';') {
            let piece = piece_raw.trim();
            // Column where the trimmed statement starts, 1-based.
            let col = offset + (piece_raw.len() - piece_raw.trim_start().len()) + 1;
            offset += piece_raw.len() + 1; // account for the ';'
            if piece.is_empty() {
                continue;
            }
            let ctx = Ctx {
                line,
                col,
                stmt: piece,
            };
            if piece.starts_with("OPENQASM") || piece.starts_with("include") {
                continue;
            }
            if let Some(rest) = piece.strip_prefix("qreg") {
                num_qubits = parse_reg_size(rest, &ctx)?;
                continue;
            }
            if let Some(rest) = piece.strip_prefix("creg") {
                num_clbits = parse_reg_size(rest, &ctx)?;
                continue;
            }
            if piece.starts_with("gate ") || piece.starts_with("if") || piece.starts_with("opaque")
            {
                let construct = piece.split_whitespace().next().unwrap_or("?");
                return Err(ctx.unsupported(piece, construct));
            }
            let c = circuit.get_or_insert_with(|| Circuit::with_clbits(num_qubits, num_clbits));
            parse_statement(c, piece, &ctx)?;
        }
    }
    Ok(circuit.unwrap_or_else(|| Circuit::with_clbits(num_qubits, num_clbits)))
}

fn parse_reg_size(rest: &str, ctx: &Ctx<'_>) -> Result<usize, QasmError> {
    let rest = rest.trim();
    let open = rest
        .find('[')
        .ok_or_else(|| ctx.syntax(rest, "expected register size"))?;
    let close = rest
        .find(']')
        .ok_or_else(|| ctx.syntax(rest, "unterminated register size"))?;
    let digits = &rest[open + 1..close];
    digits
        .parse()
        .map_err(|_| ctx.syntax(digits, "bad register size"))
}

fn parse_index(token: &str, ctx: &Ctx<'_>) -> Result<u32, QasmError> {
    let open = token
        .find('[')
        .ok_or_else(|| ctx.syntax(token, format!("expected indexed operand, got {token:?}")))?;
    let close = token
        .find(']')
        .ok_or_else(|| ctx.syntax(token, "unterminated index"))?;
    let digits = &token[open + 1..close];
    digits
        .parse()
        .map_err(|_| ctx.syntax(digits, format!("bad index in {token:?}")))
}

fn parse_statement(c: &mut Circuit, stmt: &str, ctx: &Ctx<'_>) -> Result<(), QasmError> {
    if let Some(rest) = stmt.strip_prefix("measure") {
        let mut parts = rest.split("->");
        let q = parse_index(parts.next().unwrap_or("").trim(), ctx)?;
        let cl = parse_index(parts.next().unwrap_or("").trim(), ctx)?;
        c.try_push(Instruction {
            kind: OpKind::Measure(Clbit::new(cl)),
            qubits: vec![Qubit::new(q)],
        })
        .map_err(|e| ctx.syntax(stmt, e.to_string()))?;
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("reset") {
        let q = parse_index(rest.trim(), ctx)?;
        c.try_push(Instruction {
            kind: OpKind::Reset,
            qubits: vec![Qubit::new(q)],
        })
        .map_err(|e| ctx.syntax(stmt, e.to_string()))?;
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("barrier") {
        let qubits: Result<Vec<Qubit>, QasmError> = rest
            .split(',')
            .map(|t| parse_index(t.trim(), ctx).map(Qubit::new))
            .collect();
        c.try_push(Instruction {
            kind: OpKind::Barrier,
            qubits: qubits?,
        })
        .map_err(|e| ctx.syntax(stmt, e.to_string()))?;
        return Ok(());
    }
    // Gate: name[(params)] operands.
    let (head, operands) = match stmt.find(|ch: char| ch.is_whitespace()) {
        Some(i) => stmt.split_at(i),
        None => return Err(ctx.syntax(stmt, format!("bare statement {stmt:?}"))),
    };
    let (name, params) = match head.find('(') {
        Some(i) => {
            let close = head
                .rfind(')')
                .ok_or_else(|| ctx.syntax(head, "unterminated parameter list"))?;
            let plist = &head[i + 1..close];
            let params: Result<Vec<f64>, _> =
                plist.split(',').map(|p| p.trim().parse::<f64>()).collect();
            (
                &head[..i],
                params.map_err(|_| ctx.syntax(plist, "bad gate parameter"))?,
            )
        }
        None => (head, Vec::new()),
    };
    let qubits: Result<Vec<u32>, QasmError> = operands
        .split(',')
        .map(|t| parse_index(t.trim(), ctx))
        .collect();
    let qubits = qubits?;
    let gate =
        gate_from_name(name, &params).ok_or_else(|| ctx.unsupported(name, name.to_string()))?;
    c.try_push(Instruction::gate(
        gate,
        qubits.into_iter().map(Qubit::new).collect(),
    ))
    .map_err(|e| ctx.syntax(stmt, e.to_string()))
}

fn gate_from_name(name: &str, params: &[f64]) -> Option<Gate> {
    let g = match (name, params) {
        ("id", []) => Gate::I,
        ("x", []) => Gate::X,
        ("y", []) => Gate::Y,
        ("z", []) => Gate::Z,
        ("h", []) => Gate::H,
        ("s", []) => Gate::S,
        ("sdg", []) => Gate::Sdg,
        ("t", []) => Gate::T,
        ("tdg", []) => Gate::Tdg,
        ("sx", []) => Gate::SX,
        ("sxdg", []) => Gate::SXdg,
        ("rx", [t]) => Gate::RX(*t),
        ("ry", [t]) => Gate::RY(*t),
        ("rz", [t]) => Gate::RZ(*t),
        ("p", [t]) | ("u1", [t]) => Gate::P(*t),
        ("u", [t, p, l]) | ("u3", [t, p, l]) => Gate::U(*t, *p, *l),
        ("cx", []) => Gate::CX,
        ("cz", []) => Gate::CZ,
        ("swap", []) => Gate::Swap,
        _ => return None,
    };
    Some(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0)
            .t(1)
            .rz(0.375, 2)
            .cx(0, 1)
            .cz(1, 2)
            .swap(0, 2)
            .barrier(&[0, 1])
            .measure(0, 0)
            .measure(1, 2);
        c
    }

    #[test]
    fn roundtrip_preserves_circuit_exactly() {
        let c = sample();
        let text = to_qasm(&c);
        let back = from_qasm(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn header_and_registers_emitted() {
        let text = to_qasm(&sample());
        assert!(text.starts_with("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("creg c[3];"));
    }

    #[test]
    fn parameterized_gates_roundtrip_with_precision() {
        let mut c = Circuit::new(1);
        c.rz(std::f64::consts::PI / 7.0, 0)
            .rx(-1.25, 0)
            .gate(Gate::U(0.1, 0.2, 0.3), &[0]);
        let back = from_qasm(&to_qasm(&c)).unwrap();
        for (a, b) in c.iter().zip(back.iter()) {
            match (a.as_gate(), b.as_gate()) {
                (Some(ga), Some(gb)) => {
                    for (pa, pb) in ga.params().iter().zip(gb.params().iter()) {
                        assert!((pa - pb).abs() < 1e-10);
                    }
                }
                other => panic!("gate mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn parses_qiskit_style_u1_u3_aliases() {
        let text = "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nu1(0.5) q[0];\nu3(0.1,0.2,0.3) q[0];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 2);
        assert!(
            matches!(c.instructions()[0].as_gate(), Some(Gate::P(t)) if (t - 0.5).abs() < 1e-12)
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "OPENQASM 2.0;\n// a comment\nqreg q[2];\ncreg c[2];\n\nh q[0]; // trailing\ncx q[0], q[1];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn unsupported_constructs_reported_with_line_and_column() {
        let text = "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\ngate foo a { x a; }\n";
        match from_qasm(text).unwrap_err() {
            QasmError::Unsupported {
                line,
                column,
                construct,
            } => {
                assert_eq!(line, 4);
                assert_eq!(column, 1);
                assert_eq!(construct, "gate");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_reported_with_line() {
        let text = "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\ncx q[0] q[1];\n";
        assert!(matches!(
            from_qasm(text),
            Err(QasmError::Syntax { line: 4, .. })
        ));
    }

    #[test]
    fn bad_operand_column_points_at_token() {
        // `q1` (no index) starts at column 4 of line 4.
        let text = "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\ncx q1, q[1];\n";
        match from_qasm(text).unwrap_err() {
            QasmError::Syntax {
                line,
                column,
                message,
            } => {
                assert_eq!(line, 4);
                assert_eq!(column, 4);
                assert!(message.contains("indexed operand"), "{message}");
            }
            other => panic!("expected Syntax, got {other:?}"),
        }
    }

    #[test]
    fn bad_index_column_points_at_digits() {
        // The non-numeric index `xx` starts at column 5 of line 4.
        let text = "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[xx];\n";
        match from_qasm(text).unwrap_err() {
            QasmError::Syntax { line, column, .. } => {
                assert_eq!(line, 4);
                assert_eq!(column, 5);
            }
            other => panic!("expected Syntax, got {other:?}"),
        }
    }

    #[test]
    fn bad_register_size_located() {
        // `banana` starts at column 8 of line 2.
        let text = "OPENQASM 2.0;\nqreg q[banana];\n";
        match from_qasm(text).unwrap_err() {
            QasmError::Syntax {
                line,
                column,
                message,
            } => {
                assert_eq!(line, 2);
                assert_eq!(column, 8);
                assert_eq!(message, "bad register size");
            }
            other => panic!("expected Syntax, got {other:?}"),
        }
    }

    #[test]
    fn unterminated_parameter_list_located() {
        let text = "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nrz(0.5 q[0];\n";
        match from_qasm(text).unwrap_err() {
            QasmError::Syntax {
                line,
                column,
                message,
            } => {
                assert_eq!(line, 4);
                assert_eq!(column, 1);
                assert_eq!(message, "unterminated parameter list");
            }
            other => panic!("expected Syntax, got {other:?}"),
        }
    }

    #[test]
    fn unknown_gate_column_points_at_name() {
        // Statement starts mid-line after a prior statement on line 4.
        let text = "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0]; warp q[1];\n";
        match from_qasm(text).unwrap_err() {
            QasmError::Unsupported {
                line,
                column,
                construct,
            } => {
                assert_eq!(line, 4);
                assert_eq!(column, 9);
                assert_eq!(construct, "warp");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn error_display_includes_line_and_column() {
        let err = from_qasm("OPENQASM 2.0;\nqreg q[banana];\n").unwrap_err();
        assert_eq!(err.to_string(), "line 2, column 8: bad register size");
    }

    #[test]
    fn out_of_range_operand_rejected() {
        let text = "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nx q[5];\n";
        assert!(from_qasm(text).is_err());
    }

    #[test]
    fn semantics_preserved_through_roundtrip() {
        let c = benchmarks_shape();
        let back = from_qasm(&to_qasm(&c)).unwrap();
        assert_eq!(c, back);
    }

    fn benchmarks_shape() -> Circuit {
        // A QFT-like circuit with every gate family.
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q);
            c.p(0.3 * (q as f64 + 1.0), q);
        }
        c.cx(0, 1).cx(1, 2).cx(2, 3);
        c.sx(0).sdg(1).tdg(2).y(3);
        c.measure_all();
        c
    }
}
