//! Small complex linear algebra used throughout the stack.
//!
//! The simulator stack only ever needs scalars, 2×2 and 4×4 complex matrices,
//! so we implement exactly those instead of pulling in a general linear
//! algebra dependency. All types are `Copy` and allocation-free.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// # Examples
///
/// ```
/// use qcirc::math::C64;
/// let i = C64::I;
/// assert_eq!(i * i, -C64::ONE);
/// assert!((C64::new(3.0, 4.0).norm() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a real-valued complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Returns `e^{iθ}` — the unit complex number at angle `theta` radians.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`; cheaper than [`C64::norm`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `z` is zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "inverse of zero complex number");
        C64::new(self.re / d, -self.im / d)
    }

    /// Complex square root (principal branch).
    pub fn sqrt(self) -> Self {
        let r = self.norm().sqrt();
        let theta = self.arg() / 2.0;
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64::new(self.re * s, self.im * s)
    }

    /// True when both components are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: C64) -> C64 {
        self * rhs.inv()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

/// A 2×2 complex matrix in row-major order.
///
/// Used for single-qubit unitaries and for the operator-norm computations
/// behind nearest-Clifford replacement.
///
/// # Examples
///
/// ```
/// use qcirc::math::{C64, Mat2};
/// let x = Mat2::new([
///     [C64::ZERO, C64::ONE],
///     [C64::ONE, C64::ZERO],
/// ]);
/// assert!(x.is_unitary(1e-12));
/// assert!((x * x).approx_eq(&Mat2::identity(), 1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat2 {
    m: [[C64; 2]; 2],
}

impl Mat2 {
    /// Creates a matrix from rows.
    #[inline]
    pub const fn new(m: [[C64; 2]; 2]) -> Self {
        Mat2 { m }
    }

    /// The 2×2 identity matrix.
    pub fn identity() -> Self {
        Mat2::new([[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]])
    }

    /// The all-zero matrix.
    pub fn zero() -> Self {
        Mat2::new([[C64::ZERO; 2]; 2])
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> C64 {
        self.m[row][col]
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Mat2 {
        Mat2::new([
            [self.m[0][0].conj(), self.m[1][0].conj()],
            [self.m[0][1].conj(), self.m[1][1].conj()],
        ])
    }

    /// Trace.
    pub fn trace(&self) -> C64 {
        self.m[0][0] + self.m[1][1]
    }

    /// Determinant.
    pub fn det(&self) -> C64 {
        self.m[0][0] * self.m[1][1] - self.m[0][1] * self.m[1][0]
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, s: C64) -> Mat2 {
        let mut out = *self;
        for row in &mut out.m {
            for e in row {
                *e *= s;
            }
        }
        out
    }

    /// Entry-wise comparison with tolerance `tol`.
    pub fn approx_eq(&self, other: &Mat2, tol: f64) -> bool {
        (0..2).all(|r| (0..2).all(|c| self.m[r][c].approx_eq(other.m[r][c], tol)))
    }

    /// True when `U†U ≈ I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        (self.dagger() * *self).approx_eq(&Mat2::identity(), tol)
    }

    /// Operator norm (largest singular value).
    ///
    /// For a 2×2 matrix `A`, the singular values are the square roots of the
    /// eigenvalues of the Hermitian matrix `A†A`, which have the closed form
    /// `(t ± √(t² − 4d)) / 2` with `t = tr(A†A)` and `d = det(A†A)`.
    pub fn op_norm(&self) -> f64 {
        let g = self.dagger() * *self;
        // `g` is Hermitian positive semidefinite: trace and det are real.
        let t = g.trace().re;
        let d = g.det().re;
        let disc = (t * t - 4.0 * d).max(0.0);
        (((t + disc.sqrt()) / 2.0).max(0.0)).sqrt()
    }

    /// Operator-norm distance `‖U − V‖∞` (Eq. 1 of the ADAPT paper).
    pub fn op_norm_dist(&self, other: &Mat2) -> f64 {
        (*self - *other).op_norm()
    }

    /// Global-phase-invariant operator-norm distance:
    /// `min_φ ‖U − e^{iφ}V‖∞`.
    ///
    /// Physically equivalent unitaries differ by a global phase, so the
    /// nearest-Clifford search uses this distance. For unitary arguments
    /// the minimum has a closed form: with eigenphases `α₁, α₂` of `V†U`
    /// separated by the circular distance `δ ∈ [0, π]`, the optimal phase
    /// sits at their midpoint and the distance is `2·sin(δ/4)`. Inputs
    /// that are not unitary (within 1e-6) fall back to a scan over
    /// candidate phases.
    pub fn phase_dist(&self, other: &Mat2) -> f64 {
        let m = other.dagger() * *self;
        if self.is_unitary(1e-6) && other.is_unitary(1e-6) {
            let t = m.trace();
            let disc = (t * t - m.det().scale(4.0)).sqrt();
            let a1 = (t + disc).scale(0.5).arg();
            let a2 = (t - disc).scale(0.5).arg();
            let mut delta = (a1 - a2).abs();
            if delta > std::f64::consts::PI {
                delta = 2.0 * std::f64::consts::PI - delta;
            }
            let closed = 2.0 * (delta / 4.0).sin();
            // Near-coincident eigenphases lose O(√ε) precision through the
            // discriminant; the trace-aligned phase is exact there. Both
            // are symmetric in (U, V), so their minimum is too.
            let traced = self.op_norm_dist(&other.scale(C64::cis(t.arg())));
            return closed.min(traced);
        }
        // General fallback: evaluate the distance on a phase grid with
        // local refinement (the objective is piecewise-smooth in φ).
        let eval = |phi: f64| self.op_norm_dist(&other.scale(C64::cis(phi)));
        let mut best_phi = 0.0;
        let mut best = f64::MAX;
        for k in 0..64 {
            let phi = 2.0 * std::f64::consts::PI * k as f64 / 64.0;
            let d = eval(phi);
            if d < best {
                best = d;
                best_phi = phi;
            }
        }
        let mut width = 2.0 * std::f64::consts::PI / 64.0;
        for _ in 0..40 {
            width /= 2.0;
            for phi in [best_phi - width, best_phi + width] {
                let d = eval(phi);
                if d < best {
                    best = d;
                    best_phi = phi;
                }
            }
        }
        best
    }

    /// Tensor (Kronecker) product `self ⊗ other`, yielding a 4×4 matrix.
    pub fn kron(&self, other: &Mat2) -> Mat4 {
        let mut out = Mat4::zero();
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    for l in 0..2 {
                        out.m[2 * i + k][2 * j + l] = self.m[i][j] * other.m[k][l];
                    }
                }
            }
        }
        out
    }
}

impl Add for Mat2 {
    type Output = Mat2;
    fn add(self, rhs: Mat2) -> Mat2 {
        let mut out = Mat2::zero();
        for r in 0..2 {
            for c in 0..2 {
                out.m[r][c] = self.m[r][c] + rhs.m[r][c];
            }
        }
        out
    }
}

impl Sub for Mat2 {
    type Output = Mat2;
    fn sub(self, rhs: Mat2) -> Mat2 {
        let mut out = Mat2::zero();
        for r in 0..2 {
            for c in 0..2 {
                out.m[r][c] = self.m[r][c] - rhs.m[r][c];
            }
        }
        out
    }
}

impl Mul for Mat2 {
    type Output = Mat2;
    fn mul(self, rhs: Mat2) -> Mat2 {
        let mut out = Mat2::zero();
        for r in 0..2 {
            for c in 0..2 {
                let mut acc = C64::ZERO;
                for k in 0..2 {
                    acc += self.m[r][k] * rhs.m[k][c];
                }
                out.m[r][c] = acc;
            }
        }
        out
    }
}

impl Mul<[C64; 2]> for Mat2 {
    type Output = [C64; 2];
    fn mul(self, v: [C64; 2]) -> [C64; 2] {
        [
            self.m[0][0] * v[0] + self.m[0][1] * v[1],
            self.m[1][0] * v[0] + self.m[1][1] * v[1],
        ]
    }
}

impl fmt::Display for Mat2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.m {
            writeln!(f, "[{} {}]", row[0], row[1])?;
        }
        Ok(())
    }
}

/// A 4×4 complex matrix in row-major order, used for two-qubit unitaries.
///
/// Basis ordering is `|q1 q0⟩` little-endian: index `2*b1 + b0` where `q0`
/// is the first qubit operand of the gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    m: [[C64; 4]; 4],
}

impl Mat4 {
    /// Creates a matrix from rows.
    #[inline]
    pub const fn new(m: [[C64; 4]; 4]) -> Self {
        Mat4 { m }
    }

    /// The 4×4 identity.
    pub fn identity() -> Self {
        let mut m = [[C64::ZERO; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = C64::ONE;
        }
        Mat4 { m }
    }

    /// The all-zero matrix.
    pub fn zero() -> Self {
        Mat4::new([[C64::ZERO; 4]; 4])
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> C64 {
        self.m[row][col]
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Mat4 {
        let mut out = Mat4::zero();
        for r in 0..4 {
            for c in 0..4 {
                out.m[r][c] = self.m[c][r].conj();
            }
        }
        out
    }

    /// Entry-wise comparison with tolerance `tol`.
    pub fn approx_eq(&self, other: &Mat4, tol: f64) -> bool {
        (0..4).all(|r| (0..4).all(|c| self.m[r][c].approx_eq(other.m[r][c], tol)))
    }

    /// True when `U†U ≈ I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        (self.dagger() * *self).approx_eq(&Mat4::identity(), tol)
    }

    /// Applies the matrix to a 4-vector.
    pub fn mul_vec(&self, v: [C64; 4]) -> [C64; 4] {
        let mut out = [C64::ZERO; 4];
        for (r, o) in out.iter_mut().enumerate() {
            for (k, x) in v.iter().enumerate() {
                *o += self.m[r][k] * *x;
            }
        }
        out
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4::zero();
        for r in 0..4 {
            for c in 0..4 {
                let mut acc = C64::ZERO;
                for k in 0..4 {
                    acc += self.m[r][k] * rhs.m[k][c];
                }
                out.m[r][c] = acc;
            }
        }
        out
    }
}

impl fmt::Display for Mat4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.m {
            writeln!(f, "[{} {} {} {}]", row[0], row[1], row[2], row[3])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    fn x() -> Mat2 {
        Mat2::new([[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]])
    }

    fn h() -> Mat2 {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Mat2::new([[C64::real(s), C64::real(s)], [C64::real(s), C64::real(-s)]])
    }

    #[test]
    fn complex_arithmetic_field_axioms() {
        let a = C64::new(1.5, -2.25);
        let b = C64::new(-0.5, 3.0);
        assert!((a + b - b).approx_eq(a, TOL));
        assert!((a * b / b).approx_eq(a, TOL));
        assert!((a * b).approx_eq(b * a, TOL));
        assert!((a * a.inv()).approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * 0.41;
            let z = C64::cis(theta);
            assert!((z.norm() - 1.0).abs() < TOL);
            assert!(
                (z.arg() - theta.rem_euclid(2.0 * std::f64::consts::PI))
                    .abs()
                    .min(
                        (z.arg() + 2.0 * std::f64::consts::PI
                            - theta.rem_euclid(2.0 * std::f64::consts::PI))
                        .abs()
                    )
                    < 1e-9
            );
        }
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(2.0, 3.0), (-1.0, 0.5), (0.0, -4.0), (1.0, 0.0)] {
            let z = C64::new(re, im);
            let r = z.sqrt();
            assert!((r * r).approx_eq(z, 1e-10));
        }
    }

    #[test]
    fn mat2_identity_is_neutral() {
        let i = Mat2::identity();
        assert!((i * x()).approx_eq(&x(), TOL));
        assert!((x() * i).approx_eq(&x(), TOL));
    }

    #[test]
    fn pauli_x_involution_and_unitarity() {
        assert!(x().is_unitary(TOL));
        assert!((x() * x()).approx_eq(&Mat2::identity(), TOL));
    }

    #[test]
    fn hadamard_unitary_and_norm_one() {
        assert!(h().is_unitary(TOL));
        assert!((h().op_norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn op_norm_of_zero_and_scaled_identity() {
        assert!(Mat2::zero().op_norm() < TOL);
        let two_i = Mat2::identity().scale(C64::real(2.0));
        assert!((two_i.op_norm() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn op_norm_dist_symmetry_and_triangle() {
        let a = x();
        let b = h();
        let c = Mat2::identity();
        assert!((a.op_norm_dist(&b) - b.op_norm_dist(&a)).abs() < TOL);
        assert!(a.op_norm_dist(&c) <= a.op_norm_dist(&b) + b.op_norm_dist(&c) + TOL);
    }

    #[test]
    fn phase_dist_ignores_global_phase() {
        let u = h();
        let v = h().scale(C64::cis(1.234));
        assert!(u.phase_dist(&v) < 1e-9);
        // But plain operator distance does not.
        assert!(u.op_norm_dist(&v) > 0.5);
    }

    #[test]
    fn kron_identity_is_identity() {
        let i2 = Mat2::identity();
        assert!(i2.kron(&i2).approx_eq(&Mat4::identity(), TOL));
    }

    #[test]
    fn kron_x_x_swaps_both_bits() {
        let xx = x().kron(&x());
        // |00⟩ -> |11⟩ : column 0 has a 1 in row 3.
        assert!(xx.at(3, 0).approx_eq(C64::ONE, TOL));
        assert!(xx.at(0, 3).approx_eq(C64::ONE, TOL));
        assert!(xx.is_unitary(TOL));
    }

    #[test]
    fn mat4_mul_vec_matches_identity() {
        let v = [
            C64::new(0.1, 0.2),
            C64::new(0.3, -0.4),
            C64::new(-0.5, 0.6),
            C64::new(0.7, 0.8),
        ];
        let out = Mat4::identity().mul_vec(v);
        for k in 0..4 {
            assert!(out[k].approx_eq(v[k], TOL));
        }
    }
}
