//! The single-qubit Clifford group and nearest-Clifford replacement.
//!
//! ADAPT builds decoy circuits by replacing each non-Clifford gate with the
//! closest element of the Clifford group under the operator-norm distance
//! (Eq. 1 of the paper). This module enumerates the 24 single-qubit Clifford
//! classes (modulo global phase) and provides the replacement search.

use crate::gate::Gate;
use crate::math::Mat2;

/// Tolerance for identifying two unitaries as the same Clifford class.
const CLASS_TOL: f64 = 1e-9;

/// One of the 24 single-qubit Clifford classes (unitaries modulo global
/// phase), with a short implementation as named gates.
#[derive(Debug, Clone)]
pub struct CliffordClass {
    /// A shortest gate word implementing the class. Single named gates
    /// (X, H, S, …) are preferred; otherwise a word over {H, S}.
    word: Vec<Gate>,
    /// The class representative unitary.
    unitary: Mat2,
}

impl CliffordClass {
    /// The gate word implementing this class, in application order
    /// (first gate applied first).
    pub fn word(&self) -> &[Gate] {
        &self.word
    }

    /// The representative unitary.
    pub fn unitary(&self) -> &Mat2 {
        &self.unitary
    }
}

fn word_unitary(word: &[Gate]) -> Mat2 {
    // Application order: first element acts first, so the matrix product is
    // last · … · first.
    let mut u = Mat2::identity();
    for g in word {
        let m = g
            .unitary1()
            .expect("clifford words contain only single-qubit gates");
        u = m * u;
    }
    u
}

/// Enumerates all 24 single-qubit Clifford classes.
///
/// Classes are found by breadth-first search over words in the generators
/// {H, S}; each class is then relabeled with a single named gate
/// (I, X, Y, Z, H, S, S†, √X, √X†) when one matches, so that decoy circuits
/// stay human-readable and stabilizer-simulable with the primitive gate set.
///
/// # Examples
///
/// ```
/// use qcirc::clifford::single_qubit_cliffords;
/// assert_eq!(single_qubit_cliffords().len(), 24);
/// ```
pub fn single_qubit_cliffords() -> Vec<CliffordClass> {
    let mut classes: Vec<CliffordClass> = vec![CliffordClass {
        word: vec![],
        unitary: Mat2::identity(),
    }];
    // BFS over {H, S} words. The group has 24 classes, reachable within
    // length-6 words of the generators.
    let mut frontier: Vec<Vec<Gate>> = vec![vec![]];
    while classes.len() < 24 {
        let mut next = Vec::new();
        for w in &frontier {
            for g in [Gate::H, Gate::S] {
                let mut word = w.clone();
                word.push(g);
                let u = word_unitary(&word);
                if !classes.iter().any(|c| c.unitary.phase_dist(&u) < CLASS_TOL) {
                    classes.push(CliffordClass {
                        word: word.clone(),
                        unitary: u,
                    });
                    next.push(word);
                }
            }
        }
        assert!(
            !next.is_empty(),
            "BFS stalled before finding all 24 Clifford classes"
        );
        frontier = next;
    }
    // Prefer single named gates where available.
    let named = [
        Gate::I,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::SX,
        Gate::SXdg,
    ];
    for class in &mut classes {
        for g in named {
            let u = g.unitary1().expect("named gates are single-qubit");
            if class.unitary.phase_dist(&u) < CLASS_TOL {
                class.word = vec![g];
                break;
            }
        }
    }
    classes
}

/// Result of a nearest-Clifford search.
#[derive(Debug, Clone)]
pub struct NearestClifford {
    /// Gate word implementing the nearest Clifford, in application order.
    pub word: Vec<Gate>,
    /// Global-phase-invariant operator-norm distance to the input unitary.
    pub distance: f64,
}

/// Finds the Clifford class closest to `u` under the phase-invariant
/// operator-norm distance, given a pre-enumerated `classes` table from
/// [`single_qubit_cliffords`].
pub fn nearest_clifford_in(classes: &[CliffordClass], u: &Mat2) -> NearestClifford {
    let mut best: Option<NearestClifford> = None;
    for class in classes {
        let d = u.phase_dist(&class.unitary);
        let better = match &best {
            None => true,
            Some(b) => {
                d + 1e-12 < b.distance
                    // Tie-break toward shorter words for readability.
                    || ((d - b.distance).abs() <= 1e-12 && class.word.len() < b.word.len())
            }
        };
        if better {
            best = Some(NearestClifford {
                word: class.word.clone(),
                distance: d,
            });
        }
    }
    best.expect("class table is never empty")
}

/// Convenience wrapper enumerating the class table internally. Prefer
/// [`nearest_clifford_in`] with a cached table inside loops.
pub fn nearest_clifford(u: &Mat2) -> NearestClifford {
    nearest_clifford_in(&single_qubit_cliffords(), u)
}

/// Replaces a single-qubit gate by its nearest Clifford word.
///
/// Gates that are already Clifford are returned unchanged (as a one-element
/// word); e.g. `RZ(π/2)` maps to `S` and `U1`/`P` gates map to the nearest of
/// {I, S, Z, S†} exactly as described in §4.2.1 of the paper.
///
/// # Panics
///
/// Panics when `gate` is a two-qubit gate (CX/CZ/SWAP are already Clifford
/// and need no replacement — callers keep them verbatim).
pub fn cliffordize_gate(classes: &[CliffordClass], gate: Gate) -> NearestClifford {
    let u = gate
        .unitary1()
        .expect("cliffordize_gate takes single-qubit gates only");
    if gate.is_clifford() {
        return NearestClifford {
            word: vec![gate],
            distance: 0.0,
        };
    }
    nearest_clifford_in(classes, &u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn exactly_24_classes() {
        let classes = single_qubit_cliffords();
        assert_eq!(classes.len(), 24);
        // All pairwise distinct.
        for i in 0..classes.len() {
            for j in (i + 1)..classes.len() {
                assert!(
                    classes[i].unitary.phase_dist(&classes[j].unitary) > 1e-6,
                    "classes {i} and {j} coincide"
                );
            }
        }
    }

    #[test]
    fn class_words_reproduce_unitaries() {
        for class in single_qubit_cliffords() {
            let u = word_unitary(class.word());
            assert!(u.phase_dist(class.unitary()) < 1e-9);
        }
    }

    #[test]
    fn named_paulis_present_as_single_gates() {
        let classes = single_qubit_cliffords();
        for g in [Gate::X, Gate::Y, Gate::Z, Gate::H, Gate::S, Gate::SX] {
            let found = classes.iter().any(|c| c.word() == [g]);
            assert!(found, "{g:?} not represented as a single named gate");
        }
    }

    #[test]
    fn clifford_gates_map_to_themselves() {
        let classes = single_qubit_cliffords();
        for g in [Gate::X, Gate::H, Gate::S, Gate::Sdg, Gate::Z] {
            let n = cliffordize_gate(&classes, g);
            assert_eq!(n.word, vec![g]);
            assert!(n.distance < 1e-12);
        }
    }

    #[test]
    fn t_gate_maps_to_s_or_identity_class() {
        // T = diag(1, e^{iπ/4}) sits exactly between I and S; either is a
        // valid nearest Clifford at distance |1 - e^{iπ/8}|·√2-ish.
        let classes = single_qubit_cliffords();
        let n = cliffordize_gate(&classes, Gate::T);
        assert_eq!(n.word.len(), 1);
        assert!(matches!(n.word[0], Gate::I | Gate::S));
        assert!(n.distance > 0.1 && n.distance < 0.9);
    }

    #[test]
    fn rz_clifford_angles_map_exactly() {
        let classes = single_qubit_cliffords();
        for (theta, expect) in [
            (FRAC_PI_2, Gate::S),
            (PI, Gate::Z),
            (-FRAC_PI_2, Gate::Sdg),
            (0.0, Gate::I),
        ] {
            let n = cliffordize_gate(&classes, Gate::RZ(theta));
            assert!(n.distance < 1e-9, "rz({theta}) distance {}", n.distance);
            let u = word_unitary(&n.word);
            assert!(
                u.phase_dist(&expect.unitary1().unwrap()) < 1e-9,
                "rz({theta}) mapped to {:?}, expected {:?}",
                n.word,
                expect
            );
        }
    }

    #[test]
    fn p_gate_replaced_by_z_or_s_per_paper() {
        // §4.2.1: "the U1 gate is either replaced by Z or S gates" — for
        // angles near those Cliffords.
        let classes = single_qubit_cliffords();
        let near_s = cliffordize_gate(&classes, Gate::P(FRAC_PI_2 + 0.2));
        let u = word_unitary(&near_s.word);
        assert!(u.phase_dist(&Gate::S.unitary1().unwrap()) < 1e-9);
        let near_z = cliffordize_gate(&classes, Gate::P(PI - 0.3));
        let u = word_unitary(&near_z.word);
        assert!(u.phase_dist(&Gate::Z.unitary1().unwrap()) < 1e-9);
    }

    #[test]
    fn u2_maps_to_nearby_clifford_with_small_distance() {
        let classes = single_qubit_cliffords();
        // U(π/2, 0, π) is exactly H.
        let n = cliffordize_gate(&classes, Gate::U(FRAC_PI_2, 0.0, PI));
        assert!(n.distance < 1e-9);
        let u = word_unitary(&n.word);
        assert!(u.phase_dist(&Gate::H.unitary1().unwrap()) < 1e-9);
        // A slightly perturbed U3 maps close by.
        let n = cliffordize_gate(&classes, Gate::U(FRAC_PI_2 + 0.1, 0.05, PI - 0.08));
        assert!(n.distance < 0.25);
    }

    #[test]
    fn ry_quarter_angle_distance_reasonable() {
        let classes = single_qubit_cliffords();
        let n = cliffordize_gate(&classes, Gate::RY(FRAC_PI_4));
        // Nearest Clifford to RY(π/4) is I or RY(π/2)-class at distance
        // 2·sin(π/16) ≈ 0.39.
        assert!((n.distance - 2.0 * (PI / 16.0).sin()).abs() < 1e-6);
    }

    #[test]
    fn nearest_clifford_distance_never_exceeds_worst_case() {
        // Any unitary is within distance 2 of some Clifford; in fact the
        // covering radius of the Clifford group is far smaller. Spot-check a
        // grid of U3 angles.
        let classes = single_qubit_cliffords();
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    let g = Gate::U(a as f64 * 0.7, b as f64 * 0.9, c as f64 * 1.1);
                    let n = cliffordize_gate(&classes, g);
                    assert!(n.distance <= 1.2, "{g:?} distance {}", n.distance);
                }
            }
        }
    }
}
