//! Property-based tests for the math and IR layers.

use proptest::prelude::*;
use qcirc::clifford::{cliffordize_gate, single_qubit_cliffords};
use qcirc::math::{Mat2, C64};
use qcirc::{Circuit, Counts, Gate};

fn arb_c64() -> impl Strategy<Value = C64> {
    (-10.0..10.0f64, -10.0..10.0f64).prop_map(|(re, im)| C64::new(re, im))
}

fn arb_unitary() -> impl Strategy<Value = Mat2> {
    // U(θ, φ, λ) covers all of SU(2) up to phase; add a global phase.
    (
        0.0..std::f64::consts::PI,
        -3.2..3.2f64,
        -3.2..3.2f64,
        -3.2..3.2f64,
    )
        .prop_map(|(t, p, l, g)| {
            Gate::U(t, p, l)
                .unitary1()
                .expect("U is single-qubit")
                .scale(C64::cis(g))
        })
}

proptest! {
    #[test]
    fn complex_mul_is_associative_and_distributive(a in arb_c64(), b in arb_c64(), c in arb_c64()) {
        let lhs = (a * b) * c;
        let rhs = a * (b * c);
        prop_assert!(lhs.approx_eq(rhs, 1e-9));
        let d1 = a * (b + c);
        let d2 = a * b + a * c;
        prop_assert!(d1.approx_eq(d2, 1e-9));
    }

    #[test]
    fn conjugation_is_an_involution_preserving_norm(a in arb_c64()) {
        prop_assert!(a.conj().conj().approx_eq(a, 1e-12));
        prop_assert!((a.conj().norm() - a.norm()).abs() < 1e-12);
    }

    #[test]
    fn unitaries_are_closed_under_product(u in arb_unitary(), v in arb_unitary()) {
        prop_assert!(u.is_unitary(1e-9));
        prop_assert!((u * v).is_unitary(1e-8));
        prop_assert!(((u * v).op_norm() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn phase_dist_is_a_phase_invariant_pseudometric(
        u in arb_unitary(),
        v in arb_unitary(),
        g in -3.2..3.2f64,
    ) {
        let d = u.phase_dist(&v);
        prop_assert!(d >= -1e-12);
        prop_assert!(d <= 2.0 + 1e-9);
        // Symmetric.
        prop_assert!((d - v.phase_dist(&u)).abs() < 1e-8);
        // Invariant under global phase on either argument.
        let vp = v.scale(C64::cis(g));
        prop_assert!((u.phase_dist(&vp) - d).abs() < 1e-8);
        // Zero on itself.
        prop_assert!(u.phase_dist(&u) < 1e-9);
    }

    #[test]
    fn nearest_clifford_distance_bounded_and_achieved(
        t in 0.0..std::f64::consts::PI,
        p in -3.2..3.2f64,
        l in -3.2..3.2f64,
    ) {
        let classes = single_qubit_cliffords();
        let g = Gate::U(t, p, l);
        let n = cliffordize_gate(&classes, g);
        // Every class is at least this far; spot-check five.
        let u = g.unitary1().expect("single-qubit");
        for class in classes.iter().step_by(5) {
            prop_assert!(u.phase_dist(class.unitary()) >= n.distance - 1e-9);
        }
        // The covering radius of the single-qubit Clifford group.
        prop_assert!(n.distance <= 1.2);
    }

    #[test]
    fn gate_inverse_cancels(gate_idx in 0usize..14, angle in -3.0..3.0f64) {
        let gates = [
            Gate::I, Gate::X, Gate::Y, Gate::Z, Gate::H, Gate::S, Gate::Sdg,
            Gate::T, Gate::Tdg, Gate::SX, Gate::SXdg,
            Gate::RX(angle), Gate::RY(angle), Gate::RZ(angle),
        ];
        let g = gates[gate_idx];
        let u = g.unitary1().expect("single-qubit");
        let v = g.inverse().unitary1().expect("single-qubit");
        prop_assert!((u * v).phase_dist(&Mat2::identity()) < 1e-9);
    }

    #[test]
    fn circuit_depth_le_len_and_counts_consistent(ops in proptest::collection::vec(0u8..5, 1..60)) {
        let mut c = Circuit::new(4);
        for (i, op) in ops.iter().enumerate() {
            let q = (i % 4) as u32;
            match op {
                0 => { c.h(q); }
                1 => { c.x(q); }
                2 => { c.rz(0.3, q); }
                3 => { c.cx(q, (q + 1) % 4); }
                _ => { c.measure(q, q); }
            }
        }
        prop_assert!(c.depth() <= c.len());
        let total: usize = c.count_ops().values().sum();
        prop_assert_eq!(total, c.len());
        // Compaction never changes instruction count for all-active circuits.
        let (compact, map) = c.compacted();
        prop_assert!(compact.num_qubits() <= 4);
        prop_assert_eq!(map.len(), compact.num_qubits());
    }

    #[test]
    fn counts_merge_preserves_totals(
        a in proptest::collection::vec(0u64..16, 0..50),
        b in proptest::collection::vec(0u64..16, 0..50),
    ) {
        let mut ca = Counts::new(4);
        ca.extend(a.iter().copied());
        let mut cb = Counts::new(4);
        cb.extend(b.iter().copied());
        let (ta, tb) = (ca.total(), cb.total());
        ca.merge(&cb);
        prop_assert_eq!(ca.total(), ta + tb);
        let psum: f64 = ca.to_probabilities().values().sum();
        if ta + tb > 0 {
            prop_assert!((psum - 1.0).abs() < 1e-9);
        }
    }
}
