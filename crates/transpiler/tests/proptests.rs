//! Property tests: the transpiler preserves program semantics and always
//! produces coupling-legal, consistently-scheduled circuits.

use device::Device;
use proptest::prelude::*;
use qcirc::{Circuit, Gate, OpKind};
use transpiler::{transpile, LayoutStrategy, SchedulePolicy, TranspileOptions};

#[derive(Debug, Clone, Copy)]
enum ProgOp {
    One(u8, u8, f64),
    Two(u8, u8, u8),
}

fn arb_prog(n: u8, len: usize) -> impl Strategy<Value = Vec<ProgOp>> {
    let one = (0u8..6, 0..n, -3.0..3.0f64).prop_map(|(g, q, t)| ProgOp::One(g, q, t));
    let two = (0u8..2, 0..n, 1..n).prop_map(move |(g, a, d)| ProgOp::Two(g, a, (a + d) % n));
    proptest::collection::vec(prop_oneof![2 => one, 1 => two], 1..len)
}

fn build(n: u8, ops: &[ProgOp]) -> Circuit {
    let mut c = Circuit::new(n as usize);
    for op in ops {
        match *op {
            ProgOp::One(g, q, t) => {
                let gate = match g {
                    0 => Gate::H,
                    1 => Gate::X,
                    2 => Gate::T,
                    3 => Gate::RZ(t),
                    4 => Gate::RY(t),
                    _ => Gate::S,
                };
                c.gate(gate, &[q as u32]);
            }
            ProgOp::Two(g, a, b) => {
                if g == 0 {
                    c.cx(a as u32, b as u32);
                } else {
                    c.cz(a as u32, b as u32);
                }
            }
        }
    }
    c.measure_all();
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn transpiled_circuits_are_coupling_legal_and_equivalent(
        ops in arb_prog(4, 25),
        seed in 0u64..50,
        trivial in any::<bool>(),
        asap in any::<bool>(),
    ) {
        let c = build(4, &ops);
        let dev = Device::ibmq_guadalupe(seed);
        let opts = TranspileOptions {
            layout: if trivial { LayoutStrategy::Trivial } else { LayoutStrategy::NoiseAdaptive },
            scheduling: if asap { SchedulePolicy::Asap } else { SchedulePolicy::Alap },
            skip_optimization: false,
        };
        let t = transpile(&c, &dev, &opts);
        // 1. Coupling-legal.
        for instr in t.circuit.iter() {
            if instr.is_two_qubit_gate() {
                let a = instr.qubits[0].index() as u32;
                let b = instr.qubits[1].index() as u32;
                prop_assert!(dev.topology().are_connected(a, b));
            }
        }
        // 2. Semantics preserved (exact distribution equality).
        let ideal = statevec::ideal_distribution(&c).expect("logical");
        let (compact, _) = t.circuit.compacted();
        let routed = statevec::ideal_distribution(&compact).expect("routed");
        for (k, v) in &ideal {
            let w = routed.get(k).copied().unwrap_or(0.0);
            prop_assert!((v - w).abs() < 1e-8, "outcome {}: {} vs {}", k, v, w);
        }
        // 3. Schedule is consistent: per-qubit busy intervals never overlap
        //    and events fit inside the makespan.
        for q in 0..dev.num_qubits() as u32 {
            let busy = t.timed.busy_intervals(q);
            for w in busy.windows(2) {
                prop_assert!(w[1].start_ns >= w[0].end_ns - 1e-9);
            }
        }
        for e in t.timed.events() {
            prop_assert!(e.end_ns <= t.timed.total_ns() + 1e-9);
            prop_assert!(e.start_ns >= -1e-9);
        }
        // 4. Idle fractions are probabilities.
        for q in 0..dev.num_qubits() as u32 {
            let f = t.timed.idle_fraction(q);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&f));
        }
    }

    #[test]
    fn optimization_never_changes_semantics(ops in arb_prog(3, 30)) {
        let c = build(3, &ops);
        let physical = transpiler::decompose_circuit(&c);
        let optimized = transpiler::optimize_circuit(&physical);
        prop_assert!(optimized.len() <= physical.len());
        let a = statevec::ideal_distribution(&physical).expect("decomposed");
        let b = statevec::ideal_distribution(&optimized).expect("optimized");
        for (k, v) in &a {
            let w = b.get(k).copied().unwrap_or(0.0);
            prop_assert!((v - w).abs() < 1e-8, "outcome {}: {} vs {}", k, v, w);
        }
    }

    #[test]
    fn decompose_emits_only_basis_gates(ops in arb_prog(3, 30)) {
        let c = build(3, &ops);
        let d = transpiler::decompose_circuit(&c);
        for instr in d.iter() {
            if let OpKind::Gate(g) = instr.kind {
                prop_assert!(
                    transpiler::decompose::is_basis_gate(g),
                    "{:?} escaped decomposition",
                    g
                );
            }
        }
    }

    #[test]
    fn normalize_angle_lands_in_half_open_interval(t in -1e4..1e4f64) {
        let r = transpiler::decompose::normalize_angle(t);
        prop_assert!(r > -std::f64::consts::PI - 1e-9);
        prop_assert!(r <= std::f64::consts::PI + 1e-9);
        // Same angle modulo 2π.
        let diff = (t - r) / (2.0 * std::f64::consts::PI);
        prop_assert!((diff - diff.round()).abs() < 1e-6);
    }
}
