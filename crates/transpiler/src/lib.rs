//! # transpiler — NISQ compilation pipeline
//!
//! Lowers logical circuits to hardware-executable, timestamped programs:
//!
//! 1. [`decompose`]: rewrite into the IBMQ physical basis {RZ, SX, X, CX};
//! 2. [`layout`]: noise-adaptive initial placement (Murali et al. style);
//! 3. [`route`]: SABRE-style SWAP insertion for restricted connectivity;
//! 4. [`optimize`]: peephole cancellation (RZ merging, X·X / CX·CX);
//! 5. [`schedule`]: ASAP/ALAP timestamps from per-link calibration
//!    latencies, producing the [`TimedCircuit`] that ADAPT's Gate Sequence
//!    Table is built from.
//!
//! # Examples
//!
//! ```
//! use device::Device;
//! use qcirc::Circuit;
//! use transpiler::{transpile, TranspileOptions};
//!
//! let mut c = Circuit::new(3);
//! c.h(0).cx(0, 2).measure_all();
//! let dev = Device::ibmq_guadalupe(42);
//! let t = transpile(&c, &dev, &TranspileOptions::default());
//! assert!(t.timed.total_ns() > 0.0);
//! // Every two-qubit gate respects device coupling.
//! for e in t.timed.events() {
//!     if e.instr.is_two_qubit_gate() {
//!         let a = e.instr.qubits[0].index() as u32;
//!         let b = e.instr.qubits[1].index() as u32;
//!         assert!(dev.topology().are_connected(a, b));
//!     }
//! }
//! ```

#![warn(missing_docs)]

pub mod decompose;
pub mod layout;
pub mod optimize;
pub mod route;
pub mod schedule;

pub use decompose::decompose_circuit;
pub use layout::{noise_adaptive_layout, Layout};
pub use optimize::optimize_circuit;
pub use route::{route, RoutedCircuit};
pub use schedule::{
    schedule, try_schedule, IdleKind, IdleWindow, ScheduleError, SchedulePolicy, TimedCircuit,
    TimedInstruction,
};

use device::Device;
use qcirc::Circuit;

/// Initial-placement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayoutStrategy {
    /// Program qubit `i` on physical qubit `i`.
    Trivial,
    /// Error-aware greedy placement (the paper's compile configuration).
    #[default]
    NoiseAdaptive,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TranspileOptions {
    /// Placement strategy.
    pub layout: LayoutStrategy,
    /// Scheduling direction (ALAP by default, as in §2.4).
    pub scheduling: SchedulePolicy,
    /// Skip the peephole optimizer (kept on by default).
    pub skip_optimization: bool,
}

/// A compiled program: physical, optimized, timestamped.
#[derive(Debug, Clone)]
pub struct TranspiledCircuit {
    /// The physical circuit in program order.
    pub circuit: Circuit,
    /// Timestamped schedule of the same instructions.
    pub timed: TimedCircuit,
    /// Placement before the first instruction.
    pub initial_layout: Layout,
    /// Placement after the last instruction.
    pub final_layout: Layout,
    /// SWAPs inserted during routing.
    pub swap_count: usize,
}

/// Runs the full pipeline.
///
/// # Panics
///
/// Panics when the circuit does not fit on the device.
pub fn transpile(
    circuit: &Circuit,
    device: &Device,
    options: &TranspileOptions,
) -> TranspiledCircuit {
    let decomposed = decompose_circuit(circuit);
    let initial = match options.layout {
        LayoutStrategy::Trivial => Layout::trivial(decomposed.num_qubits()),
        LayoutStrategy::NoiseAdaptive => noise_adaptive_layout(&decomposed, device),
    };
    let routed = route(&decomposed, device, initial);
    let physical = if options.skip_optimization {
        routed.circuit
    } else {
        optimize_circuit(&routed.circuit)
    };
    let timed = schedule(&physical, device, options.scheduling);
    TranspiledCircuit {
        circuit: physical,
        timed,
        initial_layout: routed.initial_layout,
        final_layout: routed.final_layout,
        swap_count: routed.swap_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use device::Device;

    fn bv(n: usize, secret: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let anc = (n - 1) as u32;
        c.x(anc).h(anc);
        for q in 0..anc {
            c.h(q);
        }
        for q in 0..anc {
            if secret >> q & 1 == 1 {
                c.cx(q, anc);
            }
        }
        for q in 0..anc {
            c.h(q);
            c.measure(q, q);
        }
        c
    }

    #[test]
    fn full_pipeline_preserves_bv_answer() {
        let dev = Device::ibmq_guadalupe(3);
        let secret = 0b01101u64;
        let c = bv(6, secret);
        let t = transpile(&c, &dev, &TranspileOptions::default());
        let dist = statevec::ideal_distribution(&t.circuit).unwrap();
        // BV answers its secret deterministically.
        assert_eq!(dist.len(), 1);
        assert!((dist[&secret] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pipeline_respects_coupling_with_all_strategies() {
        let dev = Device::ibmq_rome(2);
        let c = bv(5, 0b1011);
        for layout in [LayoutStrategy::Trivial, LayoutStrategy::NoiseAdaptive] {
            for scheduling in [SchedulePolicy::Asap, SchedulePolicy::Alap] {
                let t = transpile(
                    &c,
                    &dev,
                    &TranspileOptions {
                        layout,
                        scheduling,
                        skip_optimization: false,
                    },
                );
                for e in t.timed.events() {
                    if e.instr.is_two_qubit_gate() {
                        let a = e.instr.qubits[0].index() as u32;
                        let b = e.instr.qubits[1].index() as u32;
                        assert!(dev.topology().are_connected(a, b));
                    }
                }
            }
        }
    }

    #[test]
    fn optimization_shrinks_routed_circuits() {
        let dev = Device::ibmq_rome(2);
        let c = bv(5, 0b1111);
        let unopt = transpile(
            &c,
            &dev,
            &TranspileOptions {
                skip_optimization: true,
                ..Default::default()
            },
        );
        let opt = transpile(&c, &dev, &TranspileOptions::default());
        assert!(opt.circuit.len() <= unopt.circuit.len());
    }

    #[test]
    fn swaps_make_programs_longer_than_all_to_all() {
        // Fig 3b's premise: restricted connectivity inflates duration.
        let line = Device::ibmq_rome(1);
        let full = Device::all_to_all(5, 1);
        let c = bv(5, 0b1111);
        let t_line = transpile(&c, &line, &TranspileOptions::default());
        let t_full = transpile(&c, &full, &TranspileOptions::default());
        assert!(t_line.swap_count > 0);
        assert_eq!(t_full.swap_count, 0);
        assert!(t_line.timed.total_ns() > t_full.timed.total_ns());
    }

    #[test]
    fn qubits_idle_substantially_on_real_programs() {
        // Table 1's observation: "qubits remain idle on an average more
        // than 50% of the time".
        let dev = Device::ibmq_rome(4);
        let c = bv(5, 0b1011);
        let t = transpile(&c, &dev, &TranspileOptions::default());
        let phys: Vec<u32> = (0..5u32).map(|p| t.initial_layout.phys_of(p)).collect();
        let mean_idle: f64 = phys.iter().map(|&q| t.timed.idle_fraction(q)).sum::<f64>() / 5.0;
        assert!(mean_idle > 0.3, "mean idle fraction {mean_idle}");
    }
}
