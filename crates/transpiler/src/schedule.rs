//! Timed scheduling of physical circuits.
//!
//! The paper's Gate Sequence Table (§4.4.2) needs instruction start/end
//! timestamps computed from per-link calibration latencies — "typical
//! circuit representations do not capture idle cycles as gate latencies
//! are not embedded". [`TimedCircuit`] is that timestamped representation:
//! the scheduler produces it, ADAPT reads idle windows from it and splices
//! DD pulses into it, and the noisy executor replays it in time order.

use device::Device;
use qcirc::{Circuit, Instruction, OpKind};

/// Scheduling direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// As soon as possible.
    Asap,
    /// As late as possible — the default, matching the compilers the paper
    /// describes ("existing compilers minimize idle times by scheduling
    /// instructions as late as possible", §2.4).
    #[default]
    Alap,
}

/// An instruction with assigned wall-clock times (ns).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedInstruction {
    /// The underlying instruction (physical qubits).
    pub instr: Instruction,
    /// Start time in nanoseconds.
    pub start_ns: f64,
    /// End time in nanoseconds (`start + duration`).
    pub end_ns: f64,
}

impl TimedInstruction {
    /// Instruction duration in nanoseconds.
    pub fn duration_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }
}

/// One idle window on a qubit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleWindow {
    /// Qubit index.
    pub qubit: u32,
    /// Window start (ns).
    pub start_ns: f64,
    /// Window end (ns).
    pub end_ns: f64,
    /// Position of the window within the qubit's timeline.
    pub kind: IdleKind,
}

impl IdleWindow {
    /// Window length in nanoseconds.
    pub fn duration_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }
}

/// Where an idle window sits relative to the qubit's operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleKind {
    /// Before the qubit's first operation (state is still `|0⟩`).
    Leading,
    /// Between two operations.
    Interior,
    /// After the last operation until the end of the program.
    Trailing,
    /// The qubit never operates at all.
    Unused,
}

/// Errors raised while assembling a timed circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// An event carries a NaN/infinite timestamp and cannot be ordered.
    NonFiniteTime {
        /// Index of the offending event in the input order.
        event: usize,
        /// The start timestamp as given.
        start_ns: f64,
        /// The end timestamp as given.
        end_ns: f64,
    },
    /// An event ends before it starts.
    NegativeDuration {
        /// Index of the offending event in the input order.
        event: usize,
        /// The start timestamp as given.
        start_ns: f64,
        /// The end timestamp as given.
        end_ns: f64,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NonFiniteTime {
                event,
                start_ns,
                end_ns,
            } => write!(
                f,
                "event {event} has non-finite times [{start_ns}, {end_ns}]"
            ),
            ScheduleError::NegativeDuration {
                event,
                start_ns,
                end_ns,
            } => write!(
                f,
                "event {event} ends before it starts [{start_ns}, {end_ns}]"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A fully scheduled circuit: instructions with timestamps, sorted by
/// start time (stable on program order).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedCircuit {
    num_qubits: usize,
    num_clbits: usize,
    events: Vec<TimedInstruction>,
    total_ns: f64,
}

impl TimedCircuit {
    /// Assembles a timed circuit from raw events (used by DD insertion).
    /// Events are re-sorted by start time; the total duration is the
    /// latest end time.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or negative-duration events; use
    /// [`TimedCircuit::try_from_events`] on untrusted input.
    pub fn from_events(
        num_qubits: usize,
        num_clbits: usize,
        events: Vec<TimedInstruction>,
    ) -> Self {
        match Self::try_from_events(num_qubits, num_clbits, events) {
            Ok(t) => t,
            Err(e) => panic!("invalid timed events: {e}"),
        }
    }

    /// Fallible variant of [`TimedCircuit::from_events`]: validates every
    /// timestamp before sorting, so malformed timings surface as a typed
    /// [`ScheduleError`] instead of a comparator panic deep inside `sort`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NonFiniteTime`] for NaN/infinite
    /// timestamps and [`ScheduleError::NegativeDuration`] when an event
    /// ends before it starts.
    pub fn try_from_events(
        num_qubits: usize,
        num_clbits: usize,
        mut events: Vec<TimedInstruction>,
    ) -> Result<Self, ScheduleError> {
        for (i, e) in events.iter().enumerate() {
            if !e.start_ns.is_finite() || !e.end_ns.is_finite() {
                return Err(ScheduleError::NonFiniteTime {
                    event: i,
                    start_ns: e.start_ns,
                    end_ns: e.end_ns,
                });
            }
            if e.end_ns < e.start_ns {
                return Err(ScheduleError::NegativeDuration {
                    event: i,
                    start_ns: e.start_ns,
                    end_ns: e.end_ns,
                });
            }
        }
        events.sort_by(|a, b| {
            a.start_ns
                .partial_cmp(&b.start_ns)
                .expect("times validated finite above")
        });
        let total_ns = events.iter().map(|e| e.end_ns).fold(0.0, f64::max);
        Ok(TimedCircuit {
            num_qubits,
            num_clbits,
            events,
            total_ns,
        })
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The timed events, ordered by start time.
    pub fn events(&self) -> &[TimedInstruction] {
        &self.events
    }

    /// Program makespan in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.total_ns
    }

    /// The events occupying qubit `q`, in time order (delays and barriers
    /// excluded — they do not make the qubit busy).
    pub fn busy_intervals(&self, q: u32) -> Vec<&TimedInstruction> {
        self.events
            .iter()
            .filter(|e| {
                !matches!(e.instr.kind, OpKind::Delay(_) | OpKind::Barrier)
                    && e.instr.qubits.iter().any(|x| x.index() == q as usize)
            })
            .collect()
    }

    /// Idle windows of qubit `q` over the program, with classification.
    /// Zero-length gaps are omitted.
    pub fn idle_windows(&self, q: u32) -> Vec<IdleWindow> {
        let busy = self.busy_intervals(q);
        let mut out = Vec::new();
        const EPS: f64 = 1e-9;
        if busy.is_empty() {
            if self.total_ns > EPS {
                out.push(IdleWindow {
                    qubit: q,
                    start_ns: 0.0,
                    end_ns: self.total_ns,
                    kind: IdleKind::Unused,
                });
            }
            return out;
        }
        if busy[0].start_ns > EPS {
            out.push(IdleWindow {
                qubit: q,
                start_ns: 0.0,
                end_ns: busy[0].start_ns,
                kind: IdleKind::Leading,
            });
        }
        for w in busy.windows(2) {
            if w[1].start_ns - w[0].end_ns > EPS {
                out.push(IdleWindow {
                    qubit: q,
                    start_ns: w[0].end_ns,
                    end_ns: w[1].start_ns,
                    kind: IdleKind::Interior,
                });
            }
        }
        let last_end = busy.last().expect("nonempty").end_ns;
        if self.total_ns - last_end > EPS {
            out.push(IdleWindow {
                qubit: q,
                start_ns: last_end,
                end_ns: self.total_ns,
                kind: IdleKind::Trailing,
            });
        }
        out
    }

    /// Fraction of the program during which qubit `q` is idle (including
    /// leading/trailing windows — the paper's Table 1 "Idle Fraction").
    pub fn idle_fraction(&self, q: u32) -> f64 {
        if self.total_ns <= 0.0 {
            return 0.0;
        }
        let idle: f64 = self.idle_windows(q).iter().map(|w| w.duration_ns()).sum();
        idle / self.total_ns
    }

    /// The CNOT-active intervals of every link-shaped gate: `(start, end,
    /// qubit_a, qubit_b)` for each two-qubit gate. The noise model uses
    /// these to drive spectator crosstalk.
    pub fn two_qubit_activity(&self) -> Vec<(f64, f64, u32, u32)> {
        self.events
            .iter()
            .filter(|e| e.instr.is_two_qubit_gate())
            .map(|e| {
                (
                    e.start_ns,
                    e.end_ns,
                    e.instr.qubits[0].index() as u32,
                    e.instr.qubits[1].index() as u32,
                )
            })
            .collect()
    }

    /// Reconstructs a plain (untimed) circuit in event order.
    pub fn to_circuit(&self) -> Circuit {
        let mut c = Circuit::with_clbits(self.num_qubits, self.num_clbits);
        for e in &self.events {
            c.push(e.instr.clone());
        }
        c
    }
}

/// Computes instruction durations and assigns start times.
///
/// ASAP places each instruction at the earliest moment all operands are
/// free; ALAP mirrors the circuit, schedules ASAP, and reflects the times,
/// yielding the latest-possible placement with identical makespan.
///
/// # Panics
///
/// Panics when the circuit carries non-finite delays; use
/// [`try_schedule`] on untrusted input.
pub fn schedule(circuit: &Circuit, device: &Device, policy: SchedulePolicy) -> TimedCircuit {
    match try_schedule(circuit, device, policy) {
        Ok(t) => t,
        Err(e) => panic!("scheduling failed: {e}"),
    }
}

/// Fallible variant of [`schedule`]: malformed circuits (e.g. a
/// `Delay(NaN)`) surface as a typed [`ScheduleError`] instead of a panic.
///
/// # Errors
///
/// Returns a [`ScheduleError`] when any computed timestamp is non-finite.
pub fn try_schedule(
    circuit: &Circuit,
    device: &Device,
    policy: SchedulePolicy,
) -> Result<TimedCircuit, ScheduleError> {
    match policy {
        SchedulePolicy::Asap => try_schedule_asap(circuit, device),
        SchedulePolicy::Alap => {
            // Reverse program order, ASAP-schedule, then reflect times.
            let mut rev = Circuit::with_clbits(circuit.num_qubits(), circuit.num_clbits());
            for instr in circuit.iter().rev() {
                rev.push(instr.clone());
            }
            let asap = try_schedule_asap(&rev, device)?;
            let total = asap.total_ns;
            let mut events: Vec<TimedInstruction> = asap
                .events
                .iter()
                .map(|e| TimedInstruction {
                    instr: e.instr.clone(),
                    start_ns: total - e.end_ns,
                    end_ns: total - e.start_ns,
                })
                .collect();
            // Restore program order so that the stable sort in
            // `from_events` keeps zero-duration chains (RZ–SX–RZ) in their
            // original sequence when start times tie.
            events.reverse();
            TimedCircuit::try_from_events(circuit.num_qubits(), circuit.num_clbits(), events)
        }
    }
}

fn instruction_duration(instr: &Instruction, device: &Device) -> f64 {
    match &instr.kind {
        OpKind::Gate(g) => {
            let qs: Vec<u32> = instr.qubits.iter().map(|q| q.index() as u32).collect();
            device.gate_duration(*g, &qs)
        }
        OpKind::Measure(_) => device.readout_duration(),
        OpKind::Reset => device.readout_duration(),
        OpKind::Delay(ns) => *ns,
        OpKind::Barrier => 0.0,
    }
}

fn try_schedule_asap(circuit: &Circuit, device: &Device) -> Result<TimedCircuit, ScheduleError> {
    let n = circuit.num_qubits();
    let mut free_at = vec![0.0f64; n];
    let mut events = Vec::with_capacity(circuit.len());
    for instr in circuit.iter() {
        let dur = instruction_duration(instr, device);
        let start = instr
            .qubits
            .iter()
            .map(|q| free_at[q.index()])
            .fold(0.0, f64::max);
        let end = start + dur;
        for q in &instr.qubits {
            free_at[q.index()] = end;
        }
        events.push(TimedInstruction {
            instr: instr.clone(),
            start_ns: start,
            end_ns: end,
        });
    }
    TimedCircuit::try_from_events(n, circuit.num_clbits(), events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use device::Device;

    fn dev() -> Device {
        Device::ibmq_rome(1)
    }

    #[test]
    fn asap_serializes_dependent_gates() {
        let d = dev();
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let t = schedule(&c, &d, SchedulePolicy::Asap);
        let ev = t.events();
        // h starts at 0; cx(0,1) after h; cx(1,2) after cx(0,1).
        assert_eq!(ev[0].start_ns, 0.0);
        assert!(ev[1].start_ns >= ev[0].end_ns - 1e-9);
        assert!(ev[2].start_ns >= ev[1].end_ns - 1e-9);
        assert!(t.total_ns() >= ev[2].end_ns - 1e-9);
    }

    #[test]
    fn independent_gates_run_in_parallel() {
        let d = dev();
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let t = schedule(&c, &d, SchedulePolicy::Asap);
        assert_eq!(t.events()[0].start_ns, 0.0);
        assert_eq!(t.events()[1].start_ns, 0.0);
    }

    #[test]
    fn rz_takes_zero_time() {
        let d = dev();
        let mut c = Circuit::new(1);
        c.rz(0.4, 0).x(0);
        let t = schedule(&c, &d, SchedulePolicy::Asap);
        assert_eq!(t.events()[0].duration_ns(), 0.0);
        assert_eq!(t.events()[1].start_ns, 0.0);
    }

    #[test]
    fn alap_pushes_gates_late_keeping_makespan() {
        let d = dev();
        // q2 has a single H while q0-q1 run a long CX; ALAP moves the H to
        // the end, ASAP to the start.
        let mut c = Circuit::new(3);
        c.h(2).cx(0, 1).barrier_all().measure_all();
        let asap = schedule(&c, &d, SchedulePolicy::Asap);
        let alap = schedule(&c, &d, SchedulePolicy::Alap);
        assert!((asap.total_ns() - alap.total_ns()).abs() < 1e-6);
        let h_asap = asap
            .events()
            .iter()
            .find(|e| e.instr.as_gate() == Some(qcirc::Gate::H))
            .unwrap()
            .start_ns;
        let h_alap = alap
            .events()
            .iter()
            .find(|e| e.instr.as_gate() == Some(qcirc::Gate::H))
            .unwrap()
            .start_ns;
        assert!(
            h_alap > h_asap,
            "ALAP should delay the H ({h_alap} vs {h_asap})"
        );
    }

    #[test]
    fn idle_windows_classify_correctly() {
        let d = dev();
        let mut c = Circuit::new(3);
        // q0: h, long gap while cx(1,2) runs twice, then cx(0,1).
        c.h(0).cx(1, 2).cx(1, 2).cx(0, 1);
        let t = schedule(&c, &d, SchedulePolicy::Asap);
        let w0 = t.idle_windows(0);
        assert!(w0.iter().any(|w| w.kind == IdleKind::Interior));
        // q2 idles at the end (after its cx gates until makespan).
        let w2 = t.idle_windows(2);
        assert!(w2.last().map(|w| w.kind) == Some(IdleKind::Trailing) || w2.is_empty());
    }

    #[test]
    fn unused_qubit_is_fully_idle() {
        let d = dev();
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        let t = schedule(&c, &d, SchedulePolicy::Asap);
        let w = t.idle_windows(2);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, IdleKind::Unused);
        assert!((t.idle_fraction(2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn idle_fraction_matches_hand_computation() {
        let d = dev();
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        let t = schedule(&c, &d, SchedulePolicy::Asap);
        // q1 idles while x(0) runs: 35ns of sq pulse.
        let sq = 35.0;
        let expected = sq / t.total_ns();
        assert!((t.idle_fraction(1) - expected).abs() < 1e-9);
        assert!(t.idle_fraction(0) < 1e-9);
    }

    #[test]
    fn delay_occupies_time_without_busy() {
        let d = dev();
        let mut c = Circuit::new(1);
        c.x(0).delay(500.0, 0).x(0);
        let t = schedule(&c, &d, SchedulePolicy::Asap);
        // The delay creates a 500ns interior idle window.
        let w = t.idle_windows(0);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, IdleKind::Interior);
        assert!((w[0].duration_ns() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn barrier_synchronizes() {
        let d = dev();
        let mut c = Circuit::new(2);
        c.x(0).barrier_all().x(1);
        let t = schedule(&c, &d, SchedulePolicy::Asap);
        let x1 = t
            .events()
            .iter()
            .filter(|e| e.instr.as_gate() == Some(qcirc::Gate::X))
            .nth(1)
            .unwrap();
        assert!(x1.start_ns >= 35.0 - 1e-9, "x(1) must wait for the barrier");
    }

    #[test]
    fn two_qubit_activity_reports_links() {
        let d = dev();
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2);
        let t = schedule(&c, &d, SchedulePolicy::Asap);
        let act = t.two_qubit_activity();
        assert_eq!(act.len(), 2);
        assert_eq!((act[0].2, act[0].3), (0, 1));
        assert!(act[1].0 >= act[0].1 - 1e-9);
    }

    #[test]
    fn cnot_durations_differ_across_links() {
        let d = Device::ibmq_toronto(5);
        let mut c = Circuit::new(27);
        c.cx(0, 1).cx(12, 13);
        let t = schedule(&c, &d, SchedulePolicy::Asap);
        let d0 = t.events()[0].duration_ns();
        let d1 = t.events()[1].duration_ns();
        assert_ne!(d0, d1);
    }

    #[test]
    fn try_from_events_rejects_non_finite_times() {
        let bad = TimedInstruction {
            instr: Instruction::gate(qcirc::Gate::X, vec![qcirc::Qubit::new(0)]),
            start_ns: f64::NAN,
            end_ns: 35.0,
        };
        let err = TimedCircuit::try_from_events(1, 1, vec![bad]).unwrap_err();
        assert!(matches!(err, ScheduleError::NonFiniteTime { event: 0, .. }));
    }

    #[test]
    fn try_from_events_rejects_negative_duration() {
        let bad = TimedInstruction {
            instr: Instruction::gate(qcirc::Gate::X, vec![qcirc::Qubit::new(0)]),
            start_ns: 40.0,
            end_ns: 35.0,
        };
        let err = TimedCircuit::try_from_events(1, 1, vec![bad]).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::NegativeDuration { event: 0, .. }
        ));
    }

    #[test]
    fn try_schedule_rejects_nan_delay() {
        let d = dev();
        let mut c = Circuit::new(1);
        c.x(0);
        c.delay(f64::NAN, 0);
        let err = try_schedule(&c, &d, SchedulePolicy::Alap).unwrap_err();
        assert!(matches!(err, ScheduleError::NonFiniteTime { .. }));
        // The valid path still succeeds through the fallible API.
        let mut ok = Circuit::new(1);
        ok.x(0).measure(0, 0);
        assert!(try_schedule(&ok, &d, SchedulePolicy::Alap).is_ok());
    }

    #[test]
    fn from_events_sorts_and_computes_total() {
        let e1 = TimedInstruction {
            instr: Instruction::gate(qcirc::Gate::X, vec![qcirc::Qubit::new(0)]),
            start_ns: 100.0,
            end_ns: 135.0,
        };
        let e2 = TimedInstruction {
            instr: Instruction::gate(qcirc::Gate::X, vec![qcirc::Qubit::new(0)]),
            start_ns: 0.0,
            end_ns: 35.0,
        };
        let t = TimedCircuit::from_events(1, 1, vec![e1, e2]);
        assert_eq!(t.events()[0].start_ns, 0.0);
        assert_eq!(t.total_ns(), 135.0);
    }
}
