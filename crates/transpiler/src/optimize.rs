//! Peephole optimization of physical circuits.
//!
//! Mirrors the "redundant gates eliminated" step of the Qiskit O3 pipeline
//! the paper compiles with (§4.4.1): RZ chains merge (they are virtual
//! anyway), identity rotations vanish, and adjacent self-inverse pairs
//! (X·X, CX·CX) cancel — including the CX pairs that SWAP decomposition
//! leaves next to routed CNOTs.

use crate::decompose::normalize_angle;
use qcirc::{Circuit, Gate, Instruction, OpKind};

/// Maximum fixpoint iterations (each pass strictly shrinks the circuit, so
/// this is a safety bound, not a tuning knob).
const MAX_PASSES: usize = 64;

/// Applies cancellation/merging until fixpoint and returns the optimized
/// circuit.
pub fn optimize_circuit(circuit: &Circuit) -> Circuit {
    let mut instrs: Vec<Option<Instruction>> = circuit.iter().cloned().map(Some).collect();
    for _ in 0..MAX_PASSES {
        let changed = pass(&mut instrs, circuit.num_qubits());
        if !changed {
            break;
        }
    }
    let mut out = Circuit::with_clbits(circuit.num_qubits(), circuit.num_clbits());
    for instr in instrs.into_iter().flatten() {
        out.push(instr);
    }
    out
}

/// One peephole pass. Returns true when anything changed.
fn pass(instrs: &mut [Option<Instruction>], num_qubits: usize) -> bool {
    let mut changed = false;
    // last_on[q] = index of the most recent live instruction touching q.
    let mut last_on: Vec<Option<usize>> = vec![None; num_qubits];

    for i in 0..instrs.len() {
        let Some(instr) = instrs[i].clone() else {
            continue;
        };
        match &instr.kind {
            OpKind::Gate(g) => {
                let qubits: Vec<usize> = instr.qubits.iter().map(|q| q.index()).collect();
                // The candidate predecessor must be the immediately
                // preceding live instruction on *all* operands.
                let preds: Vec<Option<usize>> = qubits.iter().map(|&q| last_on[q]).collect();
                let same_pred = preds
                    .first()
                    .copied()
                    .flatten()
                    .filter(|&p| preds.iter().all(|&x| x == Some(p)));

                let mut consumed = false;
                let mut replaced = false;
                if let Some(p) = same_pred {
                    if let Some(prev) = instrs[p].clone() {
                        if prev.qubits == instr.qubits {
                            if let (OpKind::Gate(pg), OpKind::Gate(cg)) = (&prev.kind, &instr.kind)
                            {
                                match combine(*pg, *cg) {
                                    Combine::Cancel => {
                                        instrs[p] = None;
                                        instrs[i] = None;
                                        for &q in &qubits {
                                            last_on[q] = None;
                                        }
                                        changed = true;
                                        consumed = true;
                                    }
                                    Combine::Replace(g) => {
                                        instrs[p] = None;
                                        instrs[i] =
                                            Some(Instruction::gate(g, instr.qubits.clone()));
                                        changed = true;
                                        replaced = true;
                                    }
                                    Combine::Keep => {}
                                }
                            }
                        }
                    }
                }
                if replaced {
                    // The merged gate at `i` is live (Cancel covers the
                    // identity-merge case, so no further identity check —
                    // in particular not against the *original* gate).
                    for &q in &qubits {
                        last_on[q] = Some(i);
                    }
                } else if !consumed {
                    // Drop no-ops outright.
                    if is_identity(*g) {
                        instrs[i] = None;
                        changed = true;
                    } else {
                        for &q in &qubits {
                            last_on[q] = Some(i);
                        }
                    }
                }
            }
            OpKind::Measure(_) | OpKind::Reset | OpKind::Delay(_) => {
                for q in &instr.qubits {
                    last_on[q.index()] = Some(i);
                }
            }
            OpKind::Barrier => {
                for q in &instr.qubits {
                    last_on[q.index()] = Some(i);
                }
            }
        }
    }
    changed
}

enum Combine {
    /// Both gates vanish.
    Cancel,
    /// The pair is replaced by one gate.
    Replace(Gate),
    /// No rewrite applies.
    Keep,
}

fn is_identity(g: Gate) -> bool {
    match g {
        Gate::I => true,
        Gate::RZ(t) | Gate::P(t) => normalize_angle(t).abs() < 1e-12,
        _ => false,
    }
}

fn combine(prev: Gate, cur: Gate) -> Combine {
    match (prev, cur) {
        (Gate::RZ(a), Gate::RZ(b)) => {
            let t = normalize_angle(a + b);
            if t.abs() < 1e-12 {
                Combine::Cancel
            } else {
                Combine::Replace(Gate::RZ(t))
            }
        }
        (Gate::X, Gate::X) | (Gate::CX, Gate::CX) | (Gate::H, Gate::H) => Combine::Cancel,
        // SX·SX = X exactly: fewer pulses once merged further.
        (Gate::SX, Gate::SX) => Combine::Replace(Gate::X),
        _ => Combine::Keep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rz_chain_merges() {
        let mut c = Circuit::new(1);
        c.rz(0.3, 0).rz(0.4, 0).rz(-0.1, 0);
        let o = optimize_circuit(&c);
        assert_eq!(o.len(), 1);
        match o.instructions()[0].as_gate() {
            Some(Gate::RZ(t)) => assert!((t - 0.6).abs() < 1e-12),
            other => panic!("expected merged RZ, got {other:?}"),
        }
    }

    #[test]
    fn opposite_rz_cancels() {
        let mut c = Circuit::new(1);
        c.rz(0.7, 0).rz(-0.7, 0);
        assert!(optimize_circuit(&c).is_empty());
    }

    #[test]
    fn xx_and_cxcx_cancel() {
        let mut c = Circuit::new(2);
        c.x(0).x(0).cx(0, 1).cx(0, 1);
        assert!(optimize_circuit(&c).is_empty());
    }

    #[test]
    fn cx_with_different_orientation_survives() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        assert_eq!(optimize_circuit(&c).len(), 2);
    }

    #[test]
    fn intervening_gate_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1).x(0);
        assert_eq!(optimize_circuit(&c).len(), 3);
    }

    #[test]
    fn intervening_gate_on_either_cx_operand_blocks() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).x(1).cx(0, 1);
        assert_eq!(optimize_circuit(&c).len(), 3);
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(0.5, 0).cx(0, 1);
        assert_eq!(optimize_circuit(&c).len(), 3);
    }

    #[test]
    fn sx_pair_fuses_to_x_then_cancels_with_x() {
        let mut c = Circuit::new(1);
        c.sx(0).sx(0).x(0);
        assert!(optimize_circuit(&c).is_empty());
    }

    #[test]
    fn identity_and_zero_rz_dropped() {
        let mut c = Circuit::new(1);
        c.gate(Gate::I, &[0])
            .rz(0.0, 0)
            .rz(2.0 * std::f64::consts::PI, 0);
        assert!(optimize_circuit(&c).is_empty());
    }

    #[test]
    fn measure_blocks_merging() {
        let mut c = Circuit::new(1);
        c.rz(0.3, 0).measure(0, 0).rz(0.4, 0);
        assert_eq!(optimize_circuit(&c).len(), 3);
    }

    #[test]
    fn cascading_cancellation_reaches_fixpoint() {
        // H X X H → H H → empty.
        let mut c = Circuit::new(1);
        c.h(0).x(0).x(0).h(0);
        assert!(optimize_circuit(&c).is_empty());
    }

    #[test]
    fn merge_with_full_turn_angle_keeps_the_merged_gate() {
        // Regression: RZ(a)+RZ(2πk) merged to RZ(a), but the identity
        // check then ran on the *original* RZ(2πk) and deleted the merged
        // gate, silently losing RZ(a).
        let full_turns = 42.0 * std::f64::consts::PI;
        let mut c = Circuit::new(1);
        c.rz(0.5, 0).rz(full_turns, 0);
        let o = optimize_circuit(&c);
        assert_eq!(o.len(), 1);
        match o.instructions()[0].as_gate() {
            Some(Gate::RZ(t)) => assert!((t - 0.5).abs() < 1e-9, "angle {t}"),
            other => panic!("expected RZ(0.5), got {other:?}"),
        }
    }

    #[test]
    fn semantics_preserved_on_mixed_circuit() {
        let mut c = Circuit::new(3);
        c.h(0)
            .rz(0.3, 0)
            .rz(0.3, 0)
            .cx(0, 1)
            .x(2)
            .x(2)
            .cx(1, 2)
            .measure_all();
        let o = optimize_circuit(&c);
        assert!(o.len() < c.len());
        let p0 = statevec::ideal_distribution(&c).unwrap();
        let p1 = statevec::ideal_distribution(&o).unwrap();
        for (k, v) in &p0 {
            assert!((v - p1.get(k).copied().unwrap_or(0.0)).abs() < 1e-9);
        }
    }
}
