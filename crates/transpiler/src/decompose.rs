//! Lowering to the IBMQ physical basis {RZ, SX, X, CX}.
//!
//! IBM hardware executes RZ virtually (zero duration, software frame
//! change — McKay et al.) and implements every other single-qubit gate as
//! RZ/SX/X pulse sequences. Keeping the decomposition explicit lets the
//! scheduler assign physically accurate durations, which is what creates
//! the idle-time structure ADAPT exploits.

use qcirc::{Circuit, Gate, Instruction, OpKind, Qubit};
use std::f64::consts::{FRAC_PI_2, PI};

/// True when the gate is already in the physical basis.
pub fn is_basis_gate(gate: Gate) -> bool {
    matches!(gate, Gate::RZ(_) | Gate::SX | Gate::X | Gate::CX | Gate::I)
}

/// Decomposes one single-qubit gate into basis gates, in application order.
///
/// Uses the standard identity `U(θ, φ, λ) = RZ(φ+π) · SX · RZ(θ+π) · SX ·
/// RZ(λ)` (up to global phase) for generic rotations, with shorter special
/// cases for named gates.
pub fn decompose_1q(gate: Gate) -> Vec<Gate> {
    match gate {
        Gate::I | Gate::X | Gate::SX => vec![gate],
        Gate::Z => vec![Gate::RZ(PI)],
        Gate::S => vec![Gate::RZ(FRAC_PI_2)],
        Gate::Sdg => vec![Gate::RZ(-FRAC_PI_2)],
        Gate::T => vec![Gate::RZ(PI / 4.0)],
        Gate::Tdg => vec![Gate::RZ(-PI / 4.0)],
        Gate::P(t) | Gate::RZ(t) => vec![Gate::RZ(t)],
        // Y = X·RZ(π) up to global phase (apply RZ first).
        Gate::Y => vec![Gate::RZ(PI), Gate::X],
        // √X† = X·SX up to global phase (apply SX first).
        Gate::SXdg => vec![Gate::SX, Gate::X],
        // H = SX conjugated by RZ(π/2) up to global phase.
        Gate::H => vec![Gate::RZ(FRAC_PI_2), Gate::SX, Gate::RZ(FRAC_PI_2)],
        Gate::RX(t) => decompose_u(t, -FRAC_PI_2, FRAC_PI_2),
        Gate::RY(t) => decompose_u(t, 0.0, 0.0),
        Gate::U(t, p, l) => decompose_u(t, p, l),
        Gate::CX | Gate::CZ | Gate::Swap => {
            unreachable!("decompose_1q called with a two-qubit gate")
        }
    }
}

/// `U(θ, φ, λ)` as RZ/SX pulses, in application order.
fn decompose_u(theta: f64, phi: f64, lambda: f64) -> Vec<Gate> {
    const TOL: f64 = 1e-12;
    let theta = normalize_angle(theta);
    if theta.abs() < TOL {
        // Pure phase.
        return compact_rz(phi + lambda);
    }
    if (theta - FRAC_PI_2).abs() < TOL {
        // One-pulse form: U(π/2, φ, λ) = RZ(φ+π/2)·SX·RZ(λ−π/2) (global
        // phase ignored).
        let mut out = compact_rz(lambda - FRAC_PI_2);
        out.push(Gate::SX);
        out.extend(compact_rz(phi + FRAC_PI_2));
        return out;
    }
    // Two-pulse generic form.
    let mut out = compact_rz(lambda);
    out.push(Gate::SX);
    out.extend(compact_rz(theta + PI));
    out.push(Gate::SX);
    out.extend(compact_rz(phi + PI));
    out
}

fn compact_rz(t: f64) -> Vec<Gate> {
    let t = normalize_angle(t);
    if t.abs() < 1e-12 {
        vec![]
    } else {
        vec![Gate::RZ(t)]
    }
}

/// Maps an angle into `(-π, π]`.
pub fn normalize_angle(t: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut r = t % two_pi;
    if r > PI {
        r -= two_pi;
    } else if r <= -PI {
        r += two_pi;
    }
    r
}

/// Decomposes a two-qubit gate into basis gates over its two operands.
/// Returned instructions reference operand slots 0 and 1.
fn decompose_2q(gate: Gate) -> Vec<(Gate, Vec<usize>)> {
    match gate {
        Gate::CX => vec![(Gate::CX, vec![0, 1])],
        Gate::CZ => {
            // CZ = (I⊗H)·CX·(I⊗H) with H on the target.
            let mut out: Vec<(Gate, Vec<usize>)> = decompose_1q(Gate::H)
                .into_iter()
                .map(|g| (g, vec![1]))
                .collect();
            out.push((Gate::CX, vec![0, 1]));
            out.extend(decompose_1q(Gate::H).into_iter().map(|g| (g, vec![1])));
            out
        }
        Gate::Swap => vec![
            (Gate::CX, vec![0, 1]),
            (Gate::CX, vec![1, 0]),
            (Gate::CX, vec![0, 1]),
        ],
        _ => unreachable!("decompose_2q called with a single-qubit gate"),
    }
}

/// Lowers every gate of `circuit` into the physical basis. Measurements,
/// resets, delays and barriers pass through unchanged.
pub fn decompose_circuit(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_clbits(circuit.num_qubits(), circuit.num_clbits());
    for instr in circuit.iter() {
        match &instr.kind {
            OpKind::Gate(g) if g.arity() == 1 => {
                for gate in decompose_1q(*g) {
                    out.push(Instruction::gate(gate, instr.qubits.clone()));
                }
            }
            OpKind::Gate(g) => {
                for (gate, slots) in decompose_2q(*g) {
                    let qs: Vec<Qubit> = slots.iter().map(|&s| instr.qubits[s]).collect();
                    out.push(Instruction::gate(gate, qs));
                }
            }
            _ => {
                out.push(instr.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::math::Mat2;

    fn word_unitary(word: &[Gate]) -> Mat2 {
        let mut u = Mat2::identity();
        for g in word {
            u = g.unitary1().unwrap() * u;
        }
        u
    }

    #[test]
    fn every_1q_gate_decomposition_is_exact_up_to_phase() {
        let gates = [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::SX,
            Gate::SXdg,
            Gate::RX(0.37),
            Gate::RX(std::f64::consts::FRAC_PI_2),
            Gate::RY(1.21),
            Gate::RY(-2.5),
            Gate::RZ(-0.7),
            Gate::P(2.3),
            Gate::U(0.5, 1.2, -0.4),
            Gate::U(std::f64::consts::FRAC_PI_2, 0.1, 0.2),
            Gate::U(0.0, 0.4, 0.6),
        ];
        for g in gates {
            let word = decompose_1q(g);
            assert!(
                word.iter().all(|w| is_basis_gate(*w)),
                "{g:?} produced non-basis gates {word:?}"
            );
            let u = word_unitary(&word);
            let target = g.unitary1().unwrap();
            assert!(
                u.phase_dist(&target) < 1e-9,
                "{g:?}: decomposition mismatch (dist {})",
                u.phase_dist(&target)
            );
        }
    }

    #[test]
    fn pulse_counts_are_tight() {
        // RZ-family gates cost zero pulses; H costs one SX; generic
        // rotations at most two SX.
        assert!(decompose_1q(Gate::T)
            .iter()
            .all(|g| matches!(g, Gate::RZ(_))));
        let h = decompose_1q(Gate::H);
        assert_eq!(h.iter().filter(|g| matches!(g, Gate::SX)).count(), 1);
        let ry = decompose_1q(Gate::RY(0.9));
        assert!(ry.iter().filter(|g| matches!(g, Gate::SX)).count() <= 2);
    }

    #[test]
    fn angle_normalization() {
        assert!((normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(0.5) - 0.5).abs() < 1e-12);
        assert!(normalize_angle(2.0 * PI).abs() < 1e-12);
    }

    #[test]
    fn circuit_decomposition_preserves_semantics() {
        let mut c = Circuit::new(3);
        c.h(0)
            .t(1)
            .cz(0, 1)
            .swap(1, 2)
            .ry(0.7, 2)
            .cx(2, 0)
            .measure_all();
        let d = decompose_circuit(&c);
        for instr in d.iter() {
            if let OpKind::Gate(g) = instr.kind {
                assert!(is_basis_gate(g), "{g:?} survived decomposition");
            }
        }
        let p0 = statevec::ideal_distribution(&c).unwrap();
        let p1 = statevec::ideal_distribution(&d).unwrap();
        for (k, v) in &p0 {
            let w = p1.get(k).copied().unwrap_or(0.0);
            assert!((v - w).abs() < 1e-9, "outcome {k}: {v} vs {w}");
        }
        assert_eq!(p0.len(), p1.len());
    }

    #[test]
    fn swap_becomes_three_cnots() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let d = decompose_circuit(&c);
        assert_eq!(d.len(), 3);
        assert!(d.iter().all(|i| i.as_gate() == Some(Gate::CX)));
    }

    #[test]
    fn measurements_and_barriers_pass_through() {
        let mut c = Circuit::new(2);
        c.h(0).barrier_all().measure(0, 0).delay(100.0, 1);
        let d = decompose_circuit(&c);
        let ops = d.count_ops();
        assert_eq!(ops["barrier"], 1);
        assert_eq!(ops["measure"], 1);
        assert_eq!(ops["delay"], 1);
    }
}
