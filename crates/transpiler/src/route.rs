//! SWAP-insertion routing onto restricted connectivity.
//!
//! A SABRE-style greedy router (Li, Ding, Xie — ASPLOS'19): two-qubit gates
//! whose operands are not physically coupled trigger SWAP insertion chosen
//! by a distance heuristic with lookahead over upcoming gates, tie-broken
//! toward low-error links. SWAPs decompose to 3 CNOTs — the serialization
//! and latency they add is the third idle-time source named in §2.4 of the
//! ADAPT paper.

use crate::layout::Layout;
use device::Device;
use qcirc::{Circuit, Instruction, OpKind, Qubit};

/// Result of routing: a physical circuit plus the evolving layout.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The physical circuit (over device qubits, coupling-respecting).
    pub circuit: Circuit,
    /// Layout before the first instruction.
    pub initial_layout: Layout,
    /// Layout after the last instruction (SWAPs permute it).
    pub final_layout: Layout,
    /// Number of SWAPs inserted.
    pub swap_count: usize,
}

/// How many upcoming two-qubit gates the SWAP heuristic looks at.
const LOOKAHEAD: usize = 8;

/// Routes a (decomposed, logical) circuit onto the device starting from
/// `initial_layout`.
///
/// # Panics
///
/// Panics when the circuit has more qubits than the device.
pub fn route(circuit: &Circuit, device: &Device, initial_layout: Layout) -> RoutedCircuit {
    let n_phys = device.num_qubits();
    assert!(
        circuit.num_qubits() <= n_phys,
        "circuit does not fit on device"
    );
    let topo = device.topology();
    let mut layout = initial_layout.clone();
    let mut out = Circuit::with_clbits(n_phys, circuit.num_clbits());
    let mut swap_count = 0usize;

    // Pre-extract the positions of two-qubit gates for lookahead.
    let two_qubit_gates: Vec<(usize, u32, u32)> = circuit
        .iter()
        .enumerate()
        .filter_map(|(i, instr)| match instr.kind {
            OpKind::Gate(g) if g.arity() == 2 => Some((
                i,
                instr.qubits[0].index() as u32,
                instr.qubits[1].index() as u32,
            )),
            _ => None,
        })
        .collect();
    let mut next_2q_cursor = 0usize;

    for (idx, instr) in circuit.iter().enumerate() {
        while next_2q_cursor < two_qubit_gates.len() && two_qubit_gates[next_2q_cursor].0 <= idx {
            next_2q_cursor += 1;
        }
        match &instr.kind {
            OpKind::Gate(g) if g.arity() == 2 => {
                let (pa, pb) = (
                    instr.qubits[0].index() as u32,
                    instr.qubits[1].index() as u32,
                );
                // Insert SWAPs until the operands are coupled.
                while !topo.are_connected(layout.phys_of(pa), layout.phys_of(pb)) {
                    let (sa, sb) = choose_swap(
                        device,
                        &layout,
                        (pa, pb),
                        &two_qubit_gates[next_2q_cursor.min(two_qubit_gates.len())..],
                    );
                    emit_swap(&mut out, sa, sb, device);
                    swap_count += 1;
                    // Update layout: physical sites sa and sb exchange
                    // their program qubits.
                    layout.swap_phys(sa, sb);
                }
                let qa = layout.phys_of(pa);
                let qb = layout.phys_of(pb);
                out.push(Instruction::gate(*g, vec![Qubit::new(qa), Qubit::new(qb)]));
            }
            OpKind::Gate(g) => {
                let q = layout.phys_of(instr.qubits[0].index() as u32);
                out.push(Instruction::gate(*g, vec![Qubit::new(q)]));
            }
            OpKind::Measure(c) => {
                let q = layout.phys_of(instr.qubits[0].index() as u32);
                out.push(Instruction {
                    kind: OpKind::Measure(*c),
                    qubits: vec![Qubit::new(q)],
                });
            }
            OpKind::Reset => {
                let q = layout.phys_of(instr.qubits[0].index() as u32);
                out.push(Instruction {
                    kind: OpKind::Reset,
                    qubits: vec![Qubit::new(q)],
                });
            }
            OpKind::Delay(ns) => {
                let q = layout.phys_of(instr.qubits[0].index() as u32);
                out.push(Instruction {
                    kind: OpKind::Delay(*ns),
                    qubits: vec![Qubit::new(q)],
                });
            }
            OpKind::Barrier => {
                let qs: Vec<Qubit> = instr
                    .qubits
                    .iter()
                    .map(|q| Qubit::new(layout.phys_of(q.index() as u32)))
                    .collect();
                out.push(Instruction {
                    kind: OpKind::Barrier,
                    qubits: qs,
                });
            }
        }
    }

    RoutedCircuit {
        circuit: out,
        initial_layout,
        final_layout: layout,
        swap_count,
    }
}

/// Emits SWAP as its 3-CNOT decomposition on physical qubits.
fn emit_swap(out: &mut Circuit, a: u32, b: u32, _device: &Device) {
    out.cx(a, b).cx(b, a).cx(a, b);
}

/// Picks the best physical SWAP for bringing the current gate's operands
/// together, with lookahead over `upcoming` two-qubit program gates.
fn choose_swap(
    device: &Device,
    layout: &Layout,
    gate: (u32, u32),
    upcoming: &[(usize, u32, u32)],
) -> (u32, u32) {
    let topo = device.topology();
    let (pa, pb) = gate;
    let (qa, qb) = (layout.phys_of(pa), layout.phys_of(pb));
    let current = topo.distance(qa, qb).expect("device is connected");

    let dist_after = |layout: &Layout, sa: u32, sb: u32, x: u32, y: u32| -> u32 {
        // Positions of program qubits x,y after swapping sites sa<->sb.
        let reloc = |q: u32| -> u32 {
            if q == sa {
                sb
            } else if q == sb {
                sa
            } else {
                q
            }
        };
        let px = reloc(layout.phys_of(x));
        let py = reloc(layout.phys_of(y));
        topo.distance(px, py).unwrap_or(u32::MAX)
    };

    // Candidate swaps: links touching either operand's current site.
    let mut candidates: Vec<(u32, u32)> = Vec::new();
    for &site in &[qa, qb] {
        for &nb in topo.neighbors(site) {
            candidates.push((site.min(nb), site.max(nb)));
        }
    }
    candidates.sort_unstable();
    candidates.dedup();

    let mut best: Option<((u32, u32), f64)> = None;
    for &(sa, sb) in &candidates {
        let primary = dist_after(layout, sa, sb, pa, pb);
        if primary >= current {
            continue; // only accept strict progress — guarantees termination
        }
        let look: f64 = upcoming
            .iter()
            .take(LOOKAHEAD)
            .enumerate()
            .map(|(k, &(_, x, y))| {
                let decay = 0.5f64.powi(k as i32 + 1);
                decay * dist_after(layout, sa, sb, x, y) as f64
            })
            .sum();
        let err = device
            .cnot_error(sa, sb)
            .expect("candidate swap is a coupled link");
        let score = primary as f64 * 100.0 + look + err * 10.0;
        if best.is_none_or(|(_, s)| score < s) {
            best = Some(((sa, sb), score));
        }
    }
    if let Some((swap, _)) = best {
        return swap;
    }
    // Fallback: first hop along a shortest path (always strict progress).
    let path = topo.shortest_path(qa, qb).expect("device is connected");
    (path[0].min(path[1]), path[0].max(path[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose_circuit;
    use crate::layout::noise_adaptive_layout;
    use device::Device;
    use std::collections::BTreeMap;

    fn assert_all_2q_coupled(c: &Circuit, device: &Device) {
        for instr in c.iter() {
            if instr.is_two_qubit_gate() {
                let a = instr.qubits[0].index() as u32;
                let b = instr.qubits[1].index() as u32;
                assert!(
                    device.topology().are_connected(a, b),
                    "gate on uncoupled pair ({a},{b})"
                );
            }
        }
    }

    /// Distribution over clbits must be preserved by routing.
    fn assert_equivalent(logical: &Circuit, routed: &Circuit) {
        let p0 = statevec::ideal_distribution(logical).unwrap();
        let p1 = statevec::ideal_distribution(routed).unwrap();
        let nonzero = |m: &BTreeMap<u64, f64>| -> BTreeMap<u64, i64> {
            m.iter()
                .filter(|(_, &v)| v > 1e-12)
                .map(|(&k, &v)| (k, (v * 1e9).round() as i64))
                .collect()
        };
        assert_eq!(nonzero(&p0), nonzero(&p1));
    }

    fn bv_circuit(n: usize, secret: u64) -> Circuit {
        // Bernstein–Vazirani with ancilla at qubit n-1.
        let mut c = Circuit::new(n);
        let anc = (n - 1) as u32;
        c.x(anc).h(anc);
        for q in 0..anc {
            c.h(q);
        }
        for q in 0..anc {
            if secret >> q & 1 == 1 {
                c.cx(q, anc);
            }
        }
        for q in 0..anc {
            c.h(q);
            c.measure(q, q);
        }
        c
    }

    #[test]
    fn already_coupled_circuit_needs_no_swaps() {
        let dev = Device::ibmq_rome(1);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let r = route(&c, &dev, Layout::trivial(3));
        assert_eq!(r.swap_count, 0);
        assert_all_2q_coupled(&r.circuit, &dev);
    }

    #[test]
    fn distant_gate_gets_routed() {
        let dev = Device::ibmq_rome(1);
        let mut c = Circuit::new(5);
        c.h(0).cx(0, 4).measure(0, 0).measure(4, 4);
        let r = route(&c, &dev, Layout::trivial(5));
        assert!(r.swap_count >= 1, "0↔4 on a line needs swaps");
        assert_all_2q_coupled(&r.circuit, &dev);
        assert_equivalent(&c, &r.circuit);
    }

    #[test]
    fn routed_bv_preserves_semantics() {
        let dev = Device::ibmq_rome(2);
        for secret in [0b1011u64, 0b0110, 0b1111] {
            let c = bv_circuit(5, secret);
            let d = decompose_circuit(&c);
            let layout = noise_adaptive_layout(&d, &dev);
            let r = route(&d, &dev, layout);
            assert_all_2q_coupled(&r.circuit, &dev);
            assert_equivalent(&c, &r.circuit);
        }
    }

    #[test]
    fn routed_ghz_on_guadalupe_preserves_semantics() {
        let dev = Device::ibmq_guadalupe(5);
        let mut c = Circuit::new(6);
        c.h(0);
        // Star pattern from qubit 0 — stresses routing.
        for q in 1..6 {
            c.cx(0, q);
        }
        c.measure_all();
        let d = decompose_circuit(&c);
        let layout = noise_adaptive_layout(&d, &dev);
        let r = route(&d, &dev, layout);
        assert_all_2q_coupled(&r.circuit, &dev);
        assert_equivalent(&c, &r.circuit);
    }

    #[test]
    fn final_layout_tracks_swaps() {
        let dev = Device::ibmq_rome(1);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let r = route(&c, &dev, Layout::trivial(5));
        if r.swap_count > 0 {
            assert_ne!(r.initial_layout.assignment(), r.final_layout.assignment());
        }
        // Each program qubit still has exactly one site.
        let mut seen = std::collections::BTreeSet::new();
        for p in 0..5u32 {
            assert!(seen.insert(r.final_layout.phys_of(p)));
        }
    }

    #[test]
    fn all_to_all_never_swaps() {
        let dev = Device::all_to_all(8, 3);
        let c = bv_circuit(8, 0b1010101);
        let d = decompose_circuit(&c);
        let r = route(&d, &dev, Layout::trivial(8));
        assert_eq!(r.swap_count, 0);
    }

    #[test]
    fn swap_count_scales_with_distance_on_line() {
        let dev = Device::ibmq_rome(1);
        let mut near = Circuit::new(5);
        near.cx(0, 1);
        let mut far = Circuit::new(5);
        far.cx(0, 4);
        let rn = route(&near, &dev, Layout::trivial(5));
        let rf = route(&far, &dev, Layout::trivial(5));
        assert!(rf.swap_count > rn.swap_count);
    }
}
