//! Initial placement of program qubits onto physical qubits.
//!
//! Mirrors Qiskit's "noise adaptive" layout (Murali et al.): heavily
//! interacting program qubits are placed on low-error, well-connected
//! physical regions. The paper compiles every benchmark with this strategy
//! (§5.1); ADAPT itself runs after layout/routing and is orthogonal to it.

use device::Device;
use qcirc::{Circuit, OpKind};

/// A program-to-physical qubit assignment.
///
/// # Examples
///
/// ```
/// use transpiler::Layout;
/// let l = Layout::trivial(3);
/// assert_eq!(l.phys_of(2), 2);
/// assert_eq!(l.prog_of(2), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    prog_to_phys: Vec<u32>,
    phys_to_prog: Vec<Option<u32>>,
}

impl Layout {
    /// Builds a layout from an explicit assignment vector indexed by
    /// program qubit.
    ///
    /// # Panics
    ///
    /// Panics when the assignment repeats a physical qubit or exceeds
    /// `num_phys`.
    pub fn from_assignment(prog_to_phys: Vec<u32>, num_phys: usize) -> Self {
        let mut phys_to_prog = vec![None; num_phys];
        for (p, &phys) in prog_to_phys.iter().enumerate() {
            assert!(
                (phys as usize) < num_phys,
                "physical qubit {phys} out of range"
            );
            assert!(
                phys_to_prog[phys as usize].is_none(),
                "physical qubit {phys} assigned twice"
            );
            phys_to_prog[phys as usize] = Some(p as u32);
        }
        Layout {
            prog_to_phys,
            phys_to_prog,
        }
    }

    /// Identity layout over `n` qubits.
    pub fn trivial(n: usize) -> Self {
        Layout::from_assignment((0..n as u32).collect(), n)
    }

    /// Number of program qubits.
    pub fn num_prog(&self) -> usize {
        self.prog_to_phys.len()
    }

    /// Physical qubit hosting program qubit `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is out of range.
    pub fn phys_of(&self, p: u32) -> u32 {
        self.prog_to_phys[p as usize]
    }

    /// Program qubit hosted on physical qubit `q`, if any.
    pub fn prog_of(&self, q: u32) -> Option<u32> {
        self.phys_to_prog.get(q as usize).copied().flatten()
    }

    /// The assignment vector, indexed by program qubit.
    pub fn assignment(&self) -> &[u32] {
        &self.prog_to_phys
    }

    /// Swaps the program qubits held by two physical qubits (routing step).
    pub fn swap_phys(&mut self, a: u32, b: u32) {
        let pa = self.phys_to_prog[a as usize];
        let pb = self.phys_to_prog[b as usize];
        self.phys_to_prog[a as usize] = pb;
        self.phys_to_prog[b as usize] = pa;
        if let Some(p) = pa {
            self.prog_to_phys[p as usize] = b;
        }
        if let Some(p) = pb {
            self.prog_to_phys[p as usize] = a;
        }
    }
}

/// Interaction weight matrix: number of two-qubit gates between each
/// program qubit pair.
fn interaction_graph(circuit: &Circuit) -> Vec<Vec<u32>> {
    let n = circuit.num_qubits();
    let mut w = vec![vec![0u32; n]; n];
    for instr in circuit.iter() {
        if let OpKind::Gate(g) = instr.kind {
            if g.arity() == 2 {
                let a = instr.qubits[0].index();
                let b = instr.qubits[1].index();
                w[a][b] += 1;
                w[b][a] += 1;
            }
        }
    }
    w
}

/// Reliability score of a physical qubit: lower is better. Combines
/// readout error with the best CNOT errors of its incident links.
fn phys_cost(device: &Device, q: u32) -> f64 {
    let cal = device.calibration();
    let mut link_errs: Vec<f64> = device
        .topology()
        .neighbors(q)
        .iter()
        .filter_map(|&nb| device.cnot_error(q, nb))
        .collect();
    link_errs.sort_by(|a, b| a.partial_cmp(b).expect("error rates are finite"));
    let best_links: f64 = link_errs.iter().take(2).sum();
    cal.qubit(q).err_readout + 3.0 * best_links
}

/// Computes a noise-adaptive layout: seeds the most-interacting program
/// qubit on the most reliable physical qubit, then greedily attaches each
/// remaining program qubit (by interaction weight with already-placed
/// ones) to the free neighbor minimizing CNOT error toward its partners.
///
/// # Panics
///
/// Panics when the circuit needs more qubits than the device has.
pub fn noise_adaptive_layout(circuit: &Circuit, device: &Device) -> Layout {
    let n_prog = circuit.num_qubits();
    let n_phys = device.num_qubits();
    assert!(
        n_prog <= n_phys,
        "{n_prog}-qubit circuit does not fit on {n_phys}-qubit device"
    );
    let w = interaction_graph(circuit);
    let topo = device.topology();

    let total_weight = |p: usize| -> u32 { w[p].iter().sum() };
    let mut placed: Vec<Option<u32>> = vec![None; n_prog]; // prog -> phys
    let mut used = vec![false; n_phys];

    // Seed: heaviest program qubit on the cheapest physical qubit that has
    // at least as many neighbors as it has partners (when possible).
    let seed_prog = (0..n_prog).max_by_key(|&p| total_weight(p)).unwrap_or(0);
    let seed_phys = (0..n_phys as u32)
        .min_by(|&a, &b| {
            phys_cost(device, a)
                .partial_cmp(&phys_cost(device, b))
                .expect("costs are finite")
        })
        .expect("device has qubits");
    placed[seed_prog] = Some(seed_phys);
    used[seed_phys as usize] = true;

    for _ in 1..n_prog {
        // Next program qubit: strongest interaction with the placed set;
        // fall back to any unplaced one.
        let next = (0..n_prog)
            .filter(|&p| placed[p].is_none())
            .max_by_key(|&p| {
                (0..n_prog)
                    .filter(|&q| placed[q].is_some())
                    .map(|q| w[p][q])
                    .sum::<u32>()
                    * 1000
                    + total_weight(p)
            })
            .expect("an unplaced program qubit remains");
        // Candidate physical sites: free neighbors of partners' sites,
        // else any free qubit (closest to partners).
        let partners: Vec<u32> = (0..n_prog)
            .filter(|&q| w[next][q] > 0 && placed[q].is_some())
            .map(|q| placed[q].expect("filtered on placed"))
            .collect();
        let mut candidates: Vec<u32> = partners
            .iter()
            .flat_map(|&ph| topo.neighbors(ph).iter().copied())
            .filter(|&c| !used[c as usize])
            .collect();
        if candidates.is_empty() {
            candidates = (0..n_phys as u32).filter(|&c| !used[c as usize]).collect();
        }
        let site = candidates
            .into_iter()
            .min_by(|&a, &b| {
                let cost = |c: u32| -> f64 {
                    let dist_cost: f64 = partners
                        .iter()
                        .map(|&ph| topo.distance(c, ph).unwrap_or(99) as f64)
                        .sum();
                    let err_cost: f64 = partners
                        .iter()
                        .filter_map(|&ph| device.cnot_error(c, ph))
                        .sum();
                    10.0 * dist_cost + 100.0 * err_cost + phys_cost(device, c)
                };
                cost(a).partial_cmp(&cost(b)).expect("costs are finite")
            })
            .expect("a free physical qubit remains");
        placed[next] = Some(site);
        used[site as usize] = true;
    }

    let assignment: Vec<u32> = placed
        .into_iter()
        .map(|p| p.expect("all program qubits placed"))
        .collect();
    Layout::from_assignment(assignment, n_phys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use device::Device;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..(n - 1) as u32 {
            c.cx(q, q + 1);
        }
        c.measure_all();
        c
    }

    #[test]
    fn trivial_layout_roundtrips() {
        let l = Layout::trivial(4);
        for q in 0..4 {
            assert_eq!(l.phys_of(q), q);
            assert_eq!(l.prog_of(q), Some(q));
        }
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_assignment_rejected() {
        Layout::from_assignment(vec![0, 0], 3);
    }

    #[test]
    fn swap_phys_updates_both_directions() {
        let mut l = Layout::from_assignment(vec![2, 0], 3);
        l.swap_phys(0, 1); // prog 1 moves from phys 0 to phys 1
        assert_eq!(l.phys_of(1), 1);
        assert_eq!(l.prog_of(0), None);
        assert_eq!(l.prog_of(1), Some(1));
        // Swapping with an empty site works too.
        l.swap_phys(2, 1);
        assert_eq!(l.phys_of(0), 1);
        assert_eq!(l.phys_of(1), 2);
    }

    #[test]
    fn layout_is_injective_and_in_range() {
        let dev = Device::ibmq_guadalupe(7);
        for n in [2, 4, 8, 16] {
            let l = noise_adaptive_layout(&ghz(n), &dev);
            let mut seen = std::collections::BTreeSet::new();
            for p in 0..n as u32 {
                let phys = l.phys_of(p);
                assert!((phys as usize) < 16);
                assert!(seen.insert(phys), "phys {phys} reused");
            }
        }
    }

    #[test]
    fn chain_maps_to_mostly_adjacent_sites() {
        // A GHZ chain's consecutive qubits should usually land on coupled
        // physical qubits.
        let dev = Device::ibmq_guadalupe(7);
        let l = noise_adaptive_layout(&ghz(6), &dev);
        let adjacent = (0..5u32)
            .filter(|&q| dev.topology().are_connected(l.phys_of(q), l.phys_of(q + 1)))
            .count();
        assert!(adjacent >= 4, "only {adjacent}/5 chain links adjacent");
    }

    #[test]
    fn avoids_worst_readout_qubit_for_small_circuits() {
        let dev = Device::ibmq_toronto(11);
        let worst = (0..27u32)
            .max_by(|&a, &b| {
                dev.qubit(a)
                    .err_readout
                    .partial_cmp(&dev.qubit(b).err_readout)
                    .unwrap()
            })
            .unwrap();
        let l = noise_adaptive_layout(&ghz(3), &dev);
        for p in 0..3u32 {
            assert_ne!(l.phys_of(p), worst, "placed on worst-readout qubit");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_circuit_rejected() {
        let dev = Device::ibmq_rome(1);
        noise_adaptive_layout(&ghz(6), &dev);
    }
}
