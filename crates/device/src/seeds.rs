//! Deterministic seed derivation.
//!
//! Every stochastic component of the stack (calibration generation, noise
//! trajectories, shot sampling, search tie-breaking) draws its randomness
//! from an explicit `u64` seed, so experiments are exactly reproducible.
//! [`SeedSpawner`] splits one master seed into an arbitrary stream of
//! independent child seeds using the SplitMix64 generator.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Splits a master seed into independent child seeds.
///
/// # Examples
///
/// ```
/// use device::SeedSpawner;
/// let mut a = SeedSpawner::new(42);
/// let mut b = SeedSpawner::new(42);
/// assert_eq!(a.next_seed(), b.next_seed()); // deterministic
/// assert_ne!(a.next_seed(), a.next_seed()); // stream advances
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSpawner {
    state: u64,
}

impl SeedSpawner {
    /// Creates a spawner from a master seed.
    pub const fn new(seed: u64) -> Self {
        SeedSpawner { state: seed }
    }

    /// The next child seed (SplitMix64 step).
    pub fn next_seed(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A fresh RNG seeded from the next child seed.
    pub fn rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.next_seed())
    }

    /// Derives a labeled child seed without advancing the stream — use for
    /// stable, name-addressable sub-streams (e.g. per calibration cycle).
    pub fn derive(&self, label: u64) -> u64 {
        let mut child = SeedSpawner::new(self.state ^ label.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        child.next_seed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SeedSpawner::new(7);
        let mut b = SeedSpawner::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn different_masters_diverge() {
        let mut a = SeedSpawner::new(1);
        let mut b = SeedSpawner::new(2);
        assert_ne!(a.next_seed(), b.next_seed());
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        let s = SeedSpawner::new(99);
        assert_eq!(s.derive(5), s.derive(5));
        assert_ne!(s.derive(5), s.derive(6));
    }

    #[test]
    fn derive_does_not_advance() {
        let mut s = SeedSpawner::new(3);
        let _ = s.derive(1);
        let mut t = SeedSpawner::new(3);
        assert_eq!(s.next_seed(), t.next_seed());
    }

    #[test]
    fn spawned_rngs_reproduce() {
        use rand::Rng;
        let mut a = SeedSpawner::new(11);
        let mut b = SeedSpawner::new(11);
        let x: f64 = a.rng().gen();
        let y: f64 = b.rng().gen();
        assert_eq!(x, y);
    }
}
