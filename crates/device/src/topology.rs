//! Qubit connectivity graphs.
//!
//! NISQ machines restrict two-qubit gates to physically coupled pairs; the
//! transpiler routes around missing couplings with SWAPs, which is one of
//! the three sources of idle time the ADAPT paper identifies (§2.4). The
//! presets mirror the IBMQ machines used in the paper's evaluation.

use std::collections::VecDeque;
use std::fmt;

/// Identifier of a coupling link (an index into [`Topology::edges`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link#{}", self.0)
    }
}

/// An undirected qubit coupling graph.
///
/// # Examples
///
/// ```
/// use device::Topology;
/// let t = Topology::line(5);
/// assert!(t.are_connected(1, 2));
/// assert!(!t.are_connected(0, 4));
/// assert_eq!(t.distance(0, 4), Some(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    num_qubits: usize,
    edges: Vec<(u32, u32)>,
    adjacency: Vec<Vec<u32>>,
    /// All-pairs shortest-path distances (u32::MAX = unreachable).
    dist: Vec<Vec<u32>>,
}

impl Topology {
    /// Builds a topology from an undirected edge list.
    ///
    /// Edges are normalized to `(min, max)` order and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics when an edge endpoint is out of range or a self-loop appears.
    pub fn new(num_qubits: usize, edge_list: &[(u32, u32)]) -> Self {
        let mut edges: Vec<(u32, u32)> = edge_list
            .iter()
            .map(|&(a, b)| {
                assert!(
                    (a as usize) < num_qubits && (b as usize) < num_qubits,
                    "edge ({a},{b}) out of range for {num_qubits} qubits"
                );
                assert_ne!(a, b, "self-loop edge ({a},{b})");
                (a.min(b), a.max(b))
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let mut adjacency = vec![Vec::new(); num_qubits];
        for &(a, b) in &edges {
            adjacency[a as usize].push(b);
            adjacency[b as usize].push(a);
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
        }
        let dist = Self::all_pairs_bfs(num_qubits, &adjacency);
        Topology {
            num_qubits,
            edges,
            adjacency,
            dist,
        }
    }

    fn all_pairs_bfs(n: usize, adjacency: &[Vec<u32>]) -> Vec<Vec<u32>> {
        let mut dist = vec![vec![u32::MAX; n]; n];
        for (src, row) in dist.iter_mut().enumerate() {
            row[src] = 0;
            let mut queue = VecDeque::from([src as u32]);
            while let Some(u) = queue.pop_front() {
                let du = row[u as usize];
                for &v in &adjacency[u as usize] {
                    if row[v as usize] == u32::MAX {
                        row[v as usize] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        dist
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The normalized, sorted edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Number of coupling links.
    pub fn num_links(&self) -> usize {
        self.edges.len()
    }

    /// The endpoints of a link.
    ///
    /// # Panics
    ///
    /// Panics when the link id is out of range.
    pub fn link_endpoints(&self, link: LinkId) -> (u32, u32) {
        self.edges[link.index()]
    }

    /// The link joining `a` and `b`, if coupled.
    pub fn link_between(&self, a: u32, b: u32) -> Option<LinkId> {
        let key = (a.min(b), a.max(b));
        self.edges
            .binary_search(&key)
            .ok()
            .map(|i| LinkId(i as u32))
    }

    /// Neighbors of a qubit, ascending.
    pub fn neighbors(&self, q: u32) -> &[u32] {
        &self.adjacency[q as usize]
    }

    /// True when `a` and `b` share a coupling link.
    pub fn are_connected(&self, a: u32, b: u32) -> bool {
        self.link_between(a, b).is_some()
    }

    /// Shortest-path hop count between two qubits, `None` when disconnected.
    pub fn distance(&self, a: u32, b: u32) -> Option<u32> {
        let d = self.dist[a as usize][b as usize];
        (d != u32::MAX).then_some(d)
    }

    /// A shortest path from `a` to `b` (inclusive), `None` when disconnected.
    pub fn shortest_path(&self, a: u32, b: u32) -> Option<Vec<u32>> {
        self.distance(a, b)?;
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            let d = self.dist[a as usize][cur as usize];
            let prev = *self.adjacency[cur as usize]
                .iter()
                .find(|&&v| self.dist[a as usize][v as usize] + 1 == d)
                .expect("BFS predecessor exists");
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        Some(path)
    }

    /// Links whose endpoints both differ from `q` — the candidate "active
    /// links" of the paper's qubit–link characterization experiments.
    pub fn links_excluding(&self, q: u32) -> Vec<LinkId> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a != q && b != q)
            .map(|(i, _)| LinkId(i as u32))
            .collect()
    }

    /// Every (idle qubit, link) combination where the link does not touch
    /// the qubit. On IBMQ-Guadalupe this yields the paper's 224
    /// combinations; on Toronto, 700.
    pub fn qubit_link_combinations(&self) -> Vec<(u32, LinkId)> {
        (0..self.num_qubits as u32)
            .flat_map(|q| self.links_excluding(q).into_iter().map(move |l| (q, l)))
            .collect()
    }

    /// A 1-D chain: `0 – 1 – … – (n−1)` (IBMQ-Rome shape).
    pub fn line(n: usize) -> Self {
        let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1) as u32)
            .map(|i| (i, i + 1))
            .collect();
        Topology::new(n, &edges)
    }

    /// Fully connected graph (the paper's Fig. 3b all-to-all comparator).
    pub fn all_to_all(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                edges.push((a, b));
            }
        }
        Topology::new(n, &edges)
    }

    /// IBMQ-London: 5-qubit T shape.
    pub fn ibmq_london() -> Self {
        Topology::new(5, &[(0, 1), (1, 2), (1, 3), (3, 4)])
    }

    /// IBMQ-Rome: 5-qubit line.
    pub fn ibmq_rome() -> Self {
        Topology::line(5)
    }

    /// IBMQ-Guadalupe: 16-qubit heavy-hex (Falcon r4).
    pub fn ibmq_guadalupe() -> Self {
        Topology::new(
            16,
            &[
                (0, 1),
                (1, 2),
                (1, 4),
                (2, 3),
                (3, 5),
                (4, 7),
                (5, 8),
                (6, 7),
                (7, 10),
                (8, 9),
                (8, 11),
                (10, 12),
                (11, 14),
                (12, 13),
                (12, 15),
                (13, 14),
            ],
        )
    }

    /// 27-qubit heavy-hex (Falcon) — the IBMQ-Paris / IBMQ-Toronto layout.
    pub fn ibmq_falcon27() -> Self {
        Topology::new(
            27,
            &[
                (0, 1),
                (1, 2),
                (1, 4),
                (2, 3),
                (3, 5),
                (4, 7),
                (5, 8),
                (6, 7),
                (7, 10),
                (8, 9),
                (8, 11),
                (10, 12),
                (11, 14),
                (12, 13),
                (12, 15),
                (13, 14),
                (14, 16),
                (15, 18),
                (16, 19),
                (17, 18),
                (18, 21),
                (19, 20),
                (19, 22),
                (21, 23),
                (22, 25),
                (23, 24),
                (24, 25),
                (25, 26),
            ],
        )
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology({} qubits, {} links)",
            self.num_qubits,
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_structure() {
        let t = Topology::line(5);
        assert_eq!(t.num_links(), 4);
        assert!(t.are_connected(2, 3));
        assert!(!t.are_connected(0, 2));
        assert_eq!(t.neighbors(2), &[1, 3]);
        assert_eq!(t.distance(0, 4), Some(4));
        assert_eq!(t.shortest_path(0, 3), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn all_to_all_distances() {
        let t = Topology::all_to_all(6);
        assert_eq!(t.num_links(), 15);
        for a in 0..6 {
            for b in 0..6 {
                if a != b {
                    assert_eq!(t.distance(a, b), Some(1));
                }
            }
        }
    }

    #[test]
    fn edges_normalized_and_deduped() {
        let t = Topology::new(3, &[(2, 1), (1, 2), (0, 1)]);
        assert_eq!(t.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Topology::new(3, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        Topology::new(3, &[(0, 3)]);
    }

    #[test]
    fn link_lookup_roundtrips() {
        let t = Topology::ibmq_guadalupe();
        for (i, &(a, b)) in t.edges().iter().enumerate() {
            let l = t.link_between(a, b).unwrap();
            assert_eq!(l.index(), i);
            assert_eq!(t.link_endpoints(l), (a, b));
            assert_eq!(t.link_between(b, a), Some(l));
        }
        assert_eq!(t.link_between(0, 15), None);
    }

    #[test]
    fn guadalupe_has_224_qubit_link_combinations() {
        // §3.2: "On IBMQ-Guadalupe, there are 224 such possible combinations".
        let t = Topology::ibmq_guadalupe();
        assert_eq!(t.num_qubits(), 16);
        assert_eq!(t.num_links(), 16);
        assert_eq!(t.qubit_link_combinations().len(), 224);
    }

    #[test]
    fn falcon27_has_700_qubit_link_combinations() {
        // §3.3: "on 27-qubit IBMQ-Toronto, there are 700 qubit-link
        // combinations".
        let t = Topology::ibmq_falcon27();
        assert_eq!(t.num_qubits(), 27);
        assert_eq!(t.num_links(), 28);
        assert_eq!(t.qubit_link_combinations().len(), 700);
    }

    #[test]
    fn falcon27_contains_paper_landmarks() {
        // Fig. 6 studies Qubit-12 against Link 17–18.
        let t = Topology::ibmq_falcon27();
        assert!(t.link_between(17, 18).is_some());
        assert!(t.neighbors(12).contains(&10));
    }

    #[test]
    fn london_t_shape() {
        let t = Topology::ibmq_london();
        assert_eq!(t.neighbors(1), &[0, 2, 3]);
        assert_eq!(t.distance(0, 4), Some(3));
    }

    #[test]
    fn connected_graphs_have_paths_everywhere() {
        for t in [
            Topology::ibmq_guadalupe(),
            Topology::ibmq_falcon27(),
            Topology::ibmq_london(),
        ] {
            let n = t.num_qubits() as u32;
            for a in 0..n {
                for b in 0..n {
                    assert!(t.distance(a, b).is_some(), "{t}: {a}->{b} unreachable");
                    let p = t.shortest_path(a, b).unwrap();
                    assert_eq!(p.len() as u32, t.distance(a, b).unwrap() + 1);
                    for w in p.windows(2) {
                        assert!(t.are_connected(w[0], w[1]));
                    }
                }
            }
        }
    }
}
