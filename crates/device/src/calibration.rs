//! Per-device calibration data: error rates, durations, coherence, and
//! crosstalk couplings.
//!
//! Real IBMQ backends publish calibration snapshots every cycle; error
//! rates and couplings drift between cycles (the paper's Fig. 6 shows DD
//! helping in one cycle and hurting in the next for the same qubit–link
//! pair). We model a calibration snapshot as a seeded random draw around a
//! per-machine [`MachineProfile`], so "recalibrating" with a new cycle
//! index reproduces that drift.

use crate::seeds::SeedSpawner;
use crate::topology::{LinkId, Topology};
use rand::Rng;

/// Average error characteristics of a machine (Table 3 of the paper, plus
/// latency and crosstalk scales inferred from §2 and §3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProfile {
    /// Machine name.
    pub name: &'static str,
    /// Mean CNOT error (probability, e.g. 0.0127 for 1.27%).
    pub cnot_err_mean: f64,
    /// Mean readout error (probability).
    pub meas_err_mean: f64,
    /// Mean single-qubit gate error (probability per physical pulse).
    pub sq_err_mean: f64,
    /// Mean T1 in microseconds.
    pub t1_us: f64,
    /// Mean T2 in microseconds.
    pub t2_us: f64,
    /// Mean CNOT duration in nanoseconds.
    pub cnot_dur_ns_mean: f64,
    /// Hard cap on sampled CNOT durations (the paper quotes a 1.95× worst
    /// case on Toronto).
    pub cnot_dur_ns_max: f64,
    /// Single-qubit pulse (X/SX) duration in nanoseconds.
    pub sq_dur_ns: f64,
    /// Readout duration in nanoseconds.
    pub meas_dur_ns: f64,
    /// Scale of the crosstalk-induced dephasing rate on spectator qubits
    /// adjacent to an active CNOT link (rad/µs).
    pub crosstalk_scale: f64,
    /// Std-dev of the per-qubit quasi-static background detuning (rad/µs).
    pub static_dephasing_sigma: f64,
    /// Std-dev of the Ornstein–Uhlenbeck fluctuating detuning (rad/µs).
    pub ou_sigma: f64,
    /// Correlation time of the OU detuning process (ns).
    pub ou_tau_ns: f64,
}

/// IBMQ-Guadalupe (16 qubits, newest machine in the study: faster gates,
/// lower error, per §6.3).
pub const GUADALUPE_PROFILE: MachineProfile = MachineProfile {
    name: "ibmq_guadalupe",
    cnot_err_mean: 0.0127,
    meas_err_mean: 0.0186,
    sq_err_mean: 0.00018,
    t1_us: 71.7,
    t2_us: 85.5,
    cnot_dur_ns_mean: 340.0,
    cnot_dur_ns_max: 620.0,
    sq_dur_ns: 35.0,
    meas_dur_ns: 1500.0,
    crosstalk_scale: 0.16,
    static_dephasing_sigma: 0.014,
    ou_sigma: 0.07,
    ou_tau_ns: 900.0,
};

/// IBMQ-Paris (27 qubits).
pub const PARIS_PROFILE: MachineProfile = MachineProfile {
    name: "ibmq_paris",
    cnot_err_mean: 0.0128,
    meas_err_mean: 0.0247,
    sq_err_mean: 0.00022,
    t1_us: 80.8,
    t2_us: 83.4,
    cnot_dur_ns_mean: 430.0,
    cnot_dur_ns_max: 830.0,
    sq_dur_ns: 35.0,
    meas_dur_ns: 3000.0,
    crosstalk_scale: 0.20,
    static_dephasing_sigma: 0.014,
    ou_sigma: 0.05,
    ou_tau_ns: 1200.0,
};

/// IBMQ-Toronto (27 qubits; highest readout error, longest CNOTs).
pub const TORONTO_PROFILE: MachineProfile = MachineProfile {
    name: "ibmq_toronto",
    cnot_err_mean: 0.0152,
    meas_err_mean: 0.0442,
    sq_err_mean: 0.00024,
    t1_us: 105.0,
    t2_us: 114.0,
    cnot_dur_ns_mean: 440.0,
    cnot_dur_ns_max: 860.0,
    sq_dur_ns: 35.0,
    meas_dur_ns: 3200.0,
    crosstalk_scale: 0.20,
    static_dephasing_sigma: 0.012,
    ou_sigma: 0.045,
    ou_tau_ns: 1200.0,
};

/// IBMQ-Rome (5-qubit line; Table 1 platform).
pub const ROME_PROFILE: MachineProfile = MachineProfile {
    name: "ibmq_rome",
    cnot_err_mean: 0.0145,
    meas_err_mean: 0.025,
    sq_err_mean: 0.00022,
    t1_us: 55.0,
    t2_us: 60.0,
    cnot_dur_ns_mean: 450.0,
    cnot_dur_ns_max: 820.0,
    sq_dur_ns: 35.0,
    meas_dur_ns: 3500.0,
    crosstalk_scale: 0.20,
    static_dephasing_sigma: 0.02,
    ou_sigma: 0.055,
    ou_tau_ns: 1900.0,
};

/// IBMQ-London (5-qubit T; §3.1–3.2 characterization platform).
pub const LONDON_PROFILE: MachineProfile = MachineProfile {
    name: "ibmq_london",
    cnot_err_mean: 0.016,
    meas_err_mean: 0.03,
    sq_err_mean: 0.00025,
    t1_us: 50.0,
    t2_us: 55.0,
    cnot_dur_ns_mean: 460.0,
    cnot_dur_ns_max: 840.0,
    sq_dur_ns: 35.0,
    meas_dur_ns: 3500.0,
    crosstalk_scale: 0.22,
    static_dephasing_sigma: 0.30,
    ou_sigma: 0.30,
    ou_tau_ns: 1500.0,
};

/// Calibration of one physical qubit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QubitCalibration {
    /// Relaxation time (µs).
    pub t1_us: f64,
    /// Dephasing time (µs).
    pub t2_us: f64,
    /// Depolarizing probability per single-qubit physical pulse.
    pub err_1q: f64,
    /// Readout bit-flip probability.
    pub err_readout: f64,
    /// Std-dev of the quasi-static detuning drawn per trajectory (rad/µs).
    pub static_sigma: f64,
    /// Std-dev of the OU fluctuating detuning (rad/µs).
    pub ou_sigma: f64,
    /// OU correlation time (ns).
    pub ou_tau_ns: f64,
}

/// Calibration of one coupling link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCalibration {
    /// Depolarizing probability per CNOT.
    pub err_2q: f64,
    /// CNOT duration (ns). Heterogeneous across links — a key source of
    /// idle time (§2.4).
    pub dur_ns: f64,
}

/// One calibration snapshot of a device.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Calibration-cycle index this snapshot was generated for.
    pub cycle: u64,
    qubits: Vec<QubitCalibration>,
    links: Vec<LinkCalibration>,
    /// Dense (qubit × link) crosstalk dephasing rates in rad/µs; signed.
    /// `chi[q][l]` is the detuning induced on spectator `q` while link `l`
    /// executes a CNOT. Mostly zero; non-zero where the pair couples.
    chi: Vec<Vec<f64>>,
    /// Single-qubit pulse duration (ns), uniform across the machine.
    pub sq_dur_ns: f64,
    /// Readout duration (ns).
    pub meas_dur_ns: f64,
}

impl Calibration {
    /// Generates a calibration snapshot for `cycle` by a seeded draw around
    /// the machine profile.
    ///
    /// Heterogeneity choices follow the paper's characterization sections:
    /// per-qubit 1q errors and per-link CNOT errors/durations are lognormal
    /// around the profile means; crosstalk couples every spectator adjacent
    /// to a link strongly, next-nearest spectators weakly and a few random
    /// long-range pairs moderately (§3.3 observes non-local pairs).
    pub fn generate(topology: &Topology, profile: &MachineProfile, seed: u64, cycle: u64) -> Self {
        let spawner = SeedSpawner::new(seed);
        let mut rng = SeedSpawner::new(spawner.derive(cycle.wrapping_add(1))).rng();
        let n = topology.num_qubits();

        let lognormal = |rng: &mut rand::rngs::StdRng, mean: f64, sigma_log: f64| -> f64 {
            // Median = mean·e^{-σ²/2} so that the distribution mean ≈ mean.
            let z: f64 = {
                // Box–Muller from two uniforms (rand's StandardNormal lives
                // in rand_distr, which we avoid depending on).
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            mean * (-sigma_log * sigma_log / 2.0 + sigma_log * z).exp()
        };

        let qubits: Vec<QubitCalibration> = (0..n)
            .map(|_| QubitCalibration {
                t1_us: lognormal(&mut rng, profile.t1_us, 0.25).max(10.0),
                t2_us: lognormal(&mut rng, profile.t2_us, 0.25).max(10.0),
                err_1q: lognormal(&mut rng, profile.sq_err_mean, 0.5).clamp(3e-5, 1.2e-3),
                err_readout: lognormal(&mut rng, profile.meas_err_mean, 0.4).clamp(2e-3, 0.25),
                static_sigma: lognormal(&mut rng, profile.static_dephasing_sigma, 0.5)
                    .clamp(0.005, 0.5),
                ou_sigma: lognormal(&mut rng, profile.ou_sigma, 0.4).clamp(0.01, 0.8),
                ou_tau_ns: lognormal(&mut rng, profile.ou_tau_ns, 0.3).clamp(300.0, 8000.0),
            })
            .collect();

        let links: Vec<LinkCalibration> = topology
            .edges()
            .iter()
            .map(|_| LinkCalibration {
                err_2q: lognormal(&mut rng, profile.cnot_err_mean, 0.45).clamp(2e-3, 0.12),
                dur_ns: lognormal(&mut rng, profile.cnot_dur_ns_mean, 0.28)
                    .clamp(0.55 * profile.cnot_dur_ns_mean, profile.cnot_dur_ns_max),
            })
            .collect();

        let mut chi = vec![vec![0.0; topology.num_links()]; n];
        for q in 0..n as u32 {
            for (li, &(a, b)) in topology.edges().iter().enumerate() {
                if a == q || b == q {
                    continue; // a qubit is never a spectator of its own link
                }
                let d = topology
                    .distance(q, a)
                    .into_iter()
                    .chain(topology.distance(q, b))
                    .min()
                    .unwrap_or(u32::MAX);
                let magnitude = match d {
                    1 => {
                        // Directly adjacent spectator: strong coupling.
                        lognormal(&mut rng, profile.crosstalk_scale, 0.8)
                    }
                    2 if rng.gen::<f64>() < 0.5 => {
                        lognormal(&mut rng, 0.35 * profile.crosstalk_scale, 0.7)
                    }
                    _ if rng.gen::<f64>() < 0.04 => {
                        // Rare long-range pair (§3.3: "idling errors exist
                        // between qubit-link pairs that may not be present
                        // in the same on-chip neighborhood").
                        lognormal(&mut rng, 0.5 * profile.crosstalk_scale, 0.6)
                    }
                    _ => 0.0,
                };
                if magnitude > 0.0 {
                    let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                    chi[q as usize][li] = sign * magnitude;
                }
            }
        }

        Calibration {
            cycle,
            qubits,
            links,
            chi,
            sq_dur_ns: profile.sq_dur_ns,
            meas_dur_ns: profile.meas_dur_ns,
        }
    }

    /// Calibration of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    pub fn qubit(&self, q: u32) -> &QubitCalibration {
        &self.qubits[q as usize]
    }

    /// Calibration of a link.
    ///
    /// # Panics
    ///
    /// Panics when the link id is out of range.
    pub fn link(&self, l: LinkId) -> &LinkCalibration {
        &self.links[l.index()]
    }

    /// All qubit calibrations, indexed by qubit.
    pub fn qubits(&self) -> &[QubitCalibration] {
        &self.qubits
    }

    /// All link calibrations, indexed by [`LinkId`].
    pub fn links(&self) -> &[LinkCalibration] {
        &self.links
    }

    /// Signed crosstalk dephasing rate (rad/µs) induced on spectator `q`
    /// while `link` executes a CNOT; 0 when uncoupled.
    pub fn crosstalk(&self, q: u32, link: LinkId) -> f64 {
        self.chi[q as usize][link.index()]
    }

    /// Non-zero crosstalk couplings onto qubit `q` as `(link, rate)` pairs.
    pub fn crosstalk_on(&self, q: u32) -> Vec<(LinkId, f64)> {
        self.chi[q as usize]
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0.0)
            .map(|(i, &c)| (LinkId(i as u32), c))
            .collect()
    }

    /// Applies an in-place adjustment to every qubit calibration — the
    /// hook behind ablation experiments (e.g. sweeping the OU correlation
    /// time or zeroing crosstalk) without regenerating the snapshot.
    pub fn adjust_qubits<F: FnMut(&mut QubitCalibration)>(&mut self, mut f: F) {
        for q in &mut self.qubits {
            f(q);
        }
    }

    /// Applies an in-place adjustment to every crosstalk coupling (qubit,
    /// link, rate).
    pub fn adjust_crosstalk<F: FnMut(u32, LinkId, &mut f64)>(&mut self, mut f: F) {
        for (q, row) in self.chi.iter_mut().enumerate() {
            for (l, rate) in row.iter_mut().enumerate() {
                f(q as u32, LinkId(l as u32), rate);
            }
        }
    }

    /// Mean CNOT error over links.
    pub fn mean_cnot_err(&self) -> f64 {
        self.links.iter().map(|l| l.err_2q).sum::<f64>() / self.links.len().max(1) as f64
    }

    /// Mean readout error over qubits.
    pub fn mean_readout_err(&self) -> f64 {
        self.qubits.iter().map(|q| q.err_readout).sum::<f64>() / self.qubits.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal(cycle: u64) -> (Topology, Calibration) {
        let t = Topology::ibmq_guadalupe();
        let c = Calibration::generate(&t, &GUADALUPE_PROFILE, 1234, cycle);
        (t, c)
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, a) = cal(0);
        let (_, b) = cal(0);
        assert_eq!(a, b);
    }

    #[test]
    fn cycles_drift() {
        let (_, a) = cal(0);
        let (_, b) = cal(1);
        assert_ne!(a, b);
        // But structure is identical.
        assert_eq!(a.qubits().len(), b.qubits().len());
        assert_eq!(a.links().len(), b.links().len());
    }

    #[test]
    fn values_in_physical_ranges() {
        let (t, c) = cal(3);
        for q in c.qubits() {
            assert!(q.t1_us > 10.0 && q.t1_us < 400.0);
            assert!(q.t2_us > 10.0 && q.t2_us < 400.0);
            assert!(q.err_1q >= 5e-5 && q.err_1q <= 8e-3);
            assert!(q.err_readout >= 2e-3 && q.err_readout <= 0.25);
            assert!(q.ou_tau_ns >= 300.0);
        }
        for l in c.links() {
            assert!(l.err_2q >= 2e-3 && l.err_2q <= 0.12);
            assert!(l.dur_ns <= GUADALUPE_PROFILE.cnot_dur_ns_max);
            assert!(l.dur_ns >= 0.55 * GUADALUPE_PROFILE.cnot_dur_ns_mean);
        }
        let _ = t;
    }

    #[test]
    fn link_means_near_profile() {
        // Averaged over many links/cycles, the draw tracks the profile.
        let t = Topology::ibmq_falcon27();
        let mut errs = Vec::new();
        for cycle in 0..20 {
            let c = Calibration::generate(&t, &TORONTO_PROFILE, 7, cycle);
            errs.push(c.mean_cnot_err());
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(
            (mean - TORONTO_PROFILE.cnot_err_mean).abs() < 0.006,
            "mean {mean}"
        );
    }

    #[test]
    fn crosstalk_never_couples_own_link() {
        let (t, c) = cal(0);
        for (li, &(a, b)) in t.edges().iter().enumerate() {
            assert_eq!(c.crosstalk(a, LinkId(li as u32)), 0.0);
            assert_eq!(c.crosstalk(b, LinkId(li as u32)), 0.0);
        }
    }

    #[test]
    fn adjacent_spectators_strongly_coupled() {
        let (t, c) = cal(0);
        // Every link has at least one adjacent spectator with |chi| > 0.
        let mut coupled_links = 0;
        for li in 0..t.num_links() {
            let l = LinkId(li as u32);
            let (a, b) = t.link_endpoints(l);
            let spectators: Vec<u32> = (0..t.num_qubits() as u32)
                .filter(|&q| q != a && q != b)
                .filter(|&q| {
                    t.distance(q, a)
                        .unwrap_or(99)
                        .min(t.distance(q, b).unwrap_or(99))
                        == 1
                })
                .collect();
            if spectators.iter().any(|&q| c.crosstalk(q, l).abs() > 0.0) {
                coupled_links += 1;
            }
        }
        assert!(coupled_links >= t.num_links() - 1);
    }

    #[test]
    fn some_long_range_coupling_exists_somewhere() {
        // Over several seeds, the rare non-local couplings do appear.
        let t = Topology::ibmq_falcon27();
        let mut found = false;
        for seed in 0..5 {
            let c = Calibration::generate(&t, &TORONTO_PROFILE, seed, 0);
            'outer: for q in 0..27u32 {
                for (l, _) in c.crosstalk_on(q) {
                    let (a, b) = t.link_endpoints(l);
                    let d = t.distance(q, a).unwrap().min(t.distance(q, b).unwrap());
                    if d >= 3 {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found, "expected at least one long-range crosstalk pair");
    }

    #[test]
    fn crosstalk_signs_mixed() {
        let (_, c) = cal(0);
        let mut pos = 0;
        let mut neg = 0;
        for q in 0..16u32 {
            for (_, chi) in c.crosstalk_on(q) {
                if chi > 0.0 {
                    pos += 1;
                } else {
                    neg += 1;
                }
            }
        }
        assert!(pos > 0 && neg > 0);
    }
}
