//! # device — NISQ machine models
//!
//! Topologies, calibration snapshots, crosstalk couplings and calibration
//! drift for the IBMQ machines used in the ADAPT paper (Rome, London,
//! Guadalupe, Paris, Toronto), plus synthetic comparators (all-to-all).
//!
//! The hardware substitution is documented in `DESIGN.md`: error-rate and
//! latency *heterogeneity*, spectator crosstalk from active CNOT links, and
//! drift between calibration cycles are the device properties ADAPT
//! exploits, and all three are modeled here from seeded draws around
//! published machine profiles (Table 3 of the paper).
//!
//! # Examples
//!
//! ```
//! use device::Device;
//!
//! let dev = Device::ibmq_toronto(42);
//! // 700 qubit-link spectator combinations, as in §3.3 of the paper.
//! assert_eq!(dev.topology().qubit_link_combinations().len(), 700);
//!
//! // Crosstalk couplings drift between calibration cycles.
//! let next = dev.at_calibration_cycle(1);
//! assert_ne!(dev.calibration(), next.calibration());
//! ```

#![warn(missing_docs)]

pub mod calibration;
#[allow(clippy::module_inception)]
pub mod device;
pub mod seeds;
pub mod topology;

pub use calibration::{Calibration, LinkCalibration, MachineProfile, QubitCalibration};
pub use device::Device;
pub use seeds::SeedSpawner;
pub use topology::{LinkId, Topology};
