//! A quantum device: topology + calibration snapshot.

use crate::calibration::{
    Calibration, LinkCalibration, MachineProfile, QubitCalibration, GUADALUPE_PROFILE,
    LONDON_PROFILE, PARIS_PROFILE, ROME_PROFILE, TORONTO_PROFILE,
};
use crate::topology::{LinkId, Topology};
use std::fmt;

/// A NISQ machine model: coupling graph plus one calibration snapshot.
///
/// # Examples
///
/// ```
/// use device::Device;
/// let dev = Device::ibmq_guadalupe(42);
/// assert_eq!(dev.num_qubits(), 16);
/// assert!(dev.cnot_duration(0, 1).is_some());
/// assert!(dev.cnot_duration(0, 15).is_none()); // uncoupled
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    topology: Topology,
    calibration: Calibration,
    profile: MachineProfile,
    seed: u64,
}

impl Device {
    /// Builds a device from a topology and machine profile, generating the
    /// cycle-0 calibration from `seed`.
    pub fn new(topology: Topology, profile: MachineProfile, seed: u64) -> Self {
        let calibration = Calibration::generate(&topology, &profile, seed, 0);
        Device {
            topology,
            calibration,
            profile,
            seed,
        }
    }

    /// 16-qubit IBMQ-Guadalupe model.
    pub fn ibmq_guadalupe(seed: u64) -> Self {
        Device::new(Topology::ibmq_guadalupe(), GUADALUPE_PROFILE, seed)
    }

    /// 27-qubit IBMQ-Paris model.
    pub fn ibmq_paris(seed: u64) -> Self {
        Device::new(Topology::ibmq_falcon27(), PARIS_PROFILE, seed)
    }

    /// 27-qubit IBMQ-Toronto model.
    pub fn ibmq_toronto(seed: u64) -> Self {
        Device::new(Topology::ibmq_falcon27(), TORONTO_PROFILE, seed)
    }

    /// 5-qubit IBMQ-Rome model (line).
    pub fn ibmq_rome(seed: u64) -> Self {
        Device::new(Topology::ibmq_rome(), ROME_PROFILE, seed)
    }

    /// 5-qubit IBMQ-London model (T shape).
    pub fn ibmq_london(seed: u64) -> Self {
        Device::new(Topology::ibmq_london(), LONDON_PROFILE, seed)
    }

    /// Hypothetical machine with all-to-all connectivity but Toronto-like
    /// error rates — the Fig. 3b comparator ("a machine with similar error
    /// rates but all-to-all connectivity").
    pub fn all_to_all(n: usize, seed: u64) -> Self {
        Device::new(Topology::all_to_all(n), TORONTO_PROFILE, seed)
    }

    /// The same machine re-calibrated at a different cycle: identical
    /// topology and profile, freshly drifted calibration values.
    pub fn at_calibration_cycle(&self, cycle: u64) -> Device {
        let calibration = Calibration::generate(&self.topology, &self.profile, self.seed, cycle);
        Device {
            topology: self.topology.clone(),
            calibration,
            profile: self.profile,
            seed: self.seed,
        }
    }

    /// A copy of the device with its qubit calibrations adjusted in place
    /// (ablation hook; see [`Calibration::adjust_qubits`]).
    pub fn with_adjusted_qubits<F: FnMut(&mut QubitCalibration)>(&self, f: F) -> Device {
        let mut out = self.clone();
        out.calibration.adjust_qubits(f);
        out
    }

    /// A copy of the device with its crosstalk table adjusted in place.
    pub fn with_adjusted_crosstalk<F: FnMut(u32, LinkId, &mut f64)>(&self, f: F) -> Device {
        let mut out = self.clone();
        out.calibration.adjust_crosstalk(f);
        out
    }

    /// Machine name from the profile.
    pub fn name(&self) -> &'static str {
        self.profile.name
    }

    /// The coupling graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The active calibration snapshot.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The machine profile this device was generated from.
    pub fn profile(&self) -> &MachineProfile {
        &self.profile
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.topology.num_qubits()
    }

    /// Calibration of one qubit.
    pub fn qubit(&self, q: u32) -> &QubitCalibration {
        self.calibration.qubit(q)
    }

    /// Calibration of one link.
    pub fn link(&self, l: LinkId) -> &LinkCalibration {
        self.calibration.link(l)
    }

    /// CNOT duration between two qubits, `None` when uncoupled.
    pub fn cnot_duration(&self, a: u32, b: u32) -> Option<f64> {
        self.topology
            .link_between(a, b)
            .map(|l| self.calibration.link(l).dur_ns)
    }

    /// CNOT error between two qubits, `None` when uncoupled.
    pub fn cnot_error(&self, a: u32, b: u32) -> Option<f64> {
        self.topology
            .link_between(a, b)
            .map(|l| self.calibration.link(l).err_2q)
    }

    /// Duration of a gate on this device in nanoseconds.
    ///
    /// RZ is virtual (0 ns, per McKay et al.); all other single-qubit gates
    /// cost one or two physical pulses. Two-qubit gates take the link's
    /// CNOT duration (SWAP = 3 CNOTs). Unconnected operands fall back to
    /// the profile mean (the scheduler only queries routed circuits, where
    /// this cannot happen).
    pub fn gate_duration(&self, gate: qcirc::Gate, qubits: &[u32]) -> f64 {
        use qcirc::Gate;
        match gate {
            Gate::RZ(_)
            | Gate::P(_)
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::I => 0.0,
            Gate::X | Gate::Y | Gate::SX | Gate::SXdg | Gate::RX(_) => self.calibration.sq_dur_ns,
            // H, RY, U decompose into two physical pulses (RZ–SX–RZ / RZ–SX–RZ–SX–RZ).
            Gate::H | Gate::RY(_) => self.calibration.sq_dur_ns,
            Gate::U(..) => 2.0 * self.calibration.sq_dur_ns,
            Gate::CX | Gate::CZ => self
                .cnot_duration(qubits[0], qubits[1])
                .unwrap_or(self.profile.cnot_dur_ns_mean),
            Gate::Swap => {
                3.0 * self
                    .cnot_duration(qubits[0], qubits[1])
                    .unwrap_or(self.profile.cnot_dur_ns_mean)
            }
        }
    }

    /// Readout duration in nanoseconds.
    pub fn readout_duration(&self) -> f64 {
        self.calibration.meas_dur_ns
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} links, calibration cycle {})",
            self.profile.name,
            self.topology.num_qubits(),
            self.topology.num_links(),
            self.calibration.cycle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_sizes() {
        assert_eq!(Device::ibmq_guadalupe(1).num_qubits(), 16);
        assert_eq!(Device::ibmq_paris(1).num_qubits(), 27);
        assert_eq!(Device::ibmq_toronto(1).num_qubits(), 27);
        assert_eq!(Device::ibmq_rome(1).num_qubits(), 5);
        assert_eq!(Device::ibmq_london(1).num_qubits(), 5);
        assert_eq!(Device::all_to_all(6, 1).topology().num_links(), 15);
    }

    #[test]
    fn recalibration_changes_values_not_structure() {
        let d0 = Device::ibmq_toronto(9);
        let d1 = d0.at_calibration_cycle(1);
        assert_eq!(d0.topology(), d1.topology());
        assert_ne!(d0.calibration(), d1.calibration());
        assert_eq!(d1.calibration().cycle, 1);
        // Cycle 0 reproduces the original.
        let d0b = d0.at_calibration_cycle(0);
        assert_eq!(d0.calibration(), d0b.calibration());
    }

    #[test]
    fn rz_is_free_and_cnot_is_slow() {
        let d = Device::ibmq_toronto(3);
        assert_eq!(d.gate_duration(qcirc::Gate::RZ(0.3), &[0]), 0.0);
        let sq = d.gate_duration(qcirc::Gate::X, &[0]);
        assert!((sq - 35.0).abs() < 1e-9);
        let cx = d.gate_duration(qcirc::Gate::CX, &[0, 1]);
        assert!(cx > 5.0 * sq, "CNOT ≫ single-qubit latency ({cx} vs {sq})");
    }

    #[test]
    fn swap_is_three_cnots() {
        let d = Device::ibmq_guadalupe(3);
        let cx = d.gate_duration(qcirc::Gate::CX, &[0, 1]);
        let sw = d.gate_duration(qcirc::Gate::Swap, &[0, 1]);
        assert!((sw - 3.0 * cx).abs() < 1e-9);
    }

    #[test]
    fn cnot_latency_heterogeneous() {
        // §2.4: "CNOT gates on the same hardware incur different latencies".
        let d = Device::ibmq_toronto(5);
        let durs: Vec<f64> = d
            .topology()
            .edges()
            .iter()
            .map(|&(a, b)| d.cnot_duration(a, b).unwrap())
            .collect();
        let min = durs.iter().cloned().fold(f64::MAX, f64::min);
        let max = durs.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1.2, "expected latency spread, got {min}..{max}");
    }

    #[test]
    fn display_mentions_name_and_cycle() {
        let d = Device::ibmq_paris(1).at_calibration_cycle(4);
        let s = d.to_string();
        assert!(s.contains("ibmq_paris") && s.contains("cycle 4"));
    }
}
